//! The synthetic analogue of the paper's `Tweet` dataset.
//!
//! The real dataset contains 3.2 × 10⁸ geo-tagged tweets posted in the US
//! between June 2014 and December 2016, with latitude ∈ [24.39, 49.39],
//! longitude ∈ [−124.87, −66.86] and GPS accuracy ΔX = ΔY = 10⁻⁸
//! (Section 7.1).  The composite aggregator F1 used on it computes the
//! distribution of tweets over the day of the week they were posted.
//!
//! The generator reproduces: the bounding box, coordinate quantisation, a
//! clustered (population-centre) spatial distribution, and a day-of-week
//! attribute whose weekend/weekday mix varies across clusters — so that
//! "weekend-heavy" regions genuinely exist and F1 queries have non-trivial
//! answers.

use super::{rng_from_seed, ClusteredGenerator};
use crate::{AttrValue, AttributeDef, AttributeKind, Dataset, Schema, SpatialObject};
use asrs_geo::{Point, Rect};
use rand::Rng;

/// Labels for the day-of-week categorical attribute (index 0 = Monday).
pub const WEEKDAY_LABELS: [&str; 7] = [
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
];

/// Generator for Tweet-like workloads.
#[derive(Debug, Clone)]
pub struct TweetGenerator {
    /// Spatial extent (defaults to the paper's US bounding box).
    pub bbox: Rect,
    /// Number of spatial clusters ("cities").
    pub num_clusters: usize,
    /// Coordinate quantum (defaults to the paper's 10⁻⁸ GPS accuracy).
    pub quantum: f64,
    /// Seed controlling cluster placement and per-cluster weekend bias.
    pub structure_seed: u64,
}

impl Default for TweetGenerator {
    fn default() -> Self {
        Self {
            bbox: Rect::new(-124.87, 24.39, -66.86, 49.39),
            num_clusters: 24,
            quantum: 1e-8,
            structure_seed: 0xA5A5_5A5A,
        }
    }
}

impl TweetGenerator {
    /// A generator over a unit-free synthetic bounding box, convenient for
    /// tests that do not care about geographic coordinates.
    pub fn compact(num_clusters: usize) -> Self {
        Self {
            bbox: Rect::new(0.0, 0.0, 1000.0, 1000.0),
            num_clusters,
            quantum: 1e-6,
            structure_seed: 0xA5A5_5A5A,
        }
    }

    /// The schema of generated datasets: a single categorical
    /// `day_of_week` attribute with |dom| = 7.
    pub fn schema() -> Schema {
        Schema::new(vec![AttributeDef::new(
            "day_of_week",
            AttributeKind::categorical_labeled(WEEKDAY_LABELS.to_vec()),
        )])
    }

    /// Generates `n` tweet-like objects.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        let spatial = ClusteredGenerator::random_clusters(
            self.bbox,
            self.num_clusters.max(1),
            self.structure_seed,
        );
        // Each cluster gets its own probability that a tweet is posted on a
        // weekend; a handful of clusters are strongly weekend-heavy so that
        // aggregator-F1 queries ("find a weekend region") have meaningful
        // answers.
        let mut structure_rng = rng_from_seed(self.structure_seed ^ 0x1234_5678);
        let weekend_bias: Vec<f64> = (0..self.num_clusters.max(1))
            .map(|i| {
                if i % 5 == 0 {
                    structure_rng.gen_range(0.55..0.85)
                } else {
                    structure_rng.gen_range(0.18..0.35)
                }
            })
            .collect();

        let mut rng = rng_from_seed(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|id| {
                let raw = spatial.sample_point(&mut rng);
                let p = Point::new(
                    super::quantize(raw.x, self.quantum),
                    super::quantize(raw.y, self.quantum),
                );
                let cluster = spatial.nearest_cluster(&raw);
                let is_weekend = rng.gen_bool(weekend_bias[cluster]);
                let day: u32 = if is_weekend {
                    5 + rng.gen_range(0..2) // Saturday or Sunday
                } else {
                    rng.gen_range(0..5) // Monday .. Friday
                };
                SpatialObject::new(id as u64, p, vec![AttrValue::Cat(day)])
            })
            .collect();
        Dataset::new_unchecked(Self::schema(), objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_seven_days() {
        let schema = TweetGenerator::schema();
        assert_eq!(schema.len(), 1);
        assert_eq!(schema.attribute(0).unwrap().kind.cardinality(), Some(7));
        assert_eq!(schema.category_label(0, 5), "Saturday");
    }

    #[test]
    fn objects_stay_inside_us_bbox_and_are_quantized() {
        let g = TweetGenerator::default();
        let ds = g.generate(500, 3);
        assert_eq!(ds.len(), 500);
        let bbox = ds.bounding_box().unwrap();
        assert!(g.bbox.expanded(1e-7, 1e-7).contains_rect(&bbox));
        for o in ds.objects().take(50) {
            let snapped = (o.x() / 1e-8).round() * 1e-8;
            assert!((o.x() - snapped).abs() < 1e-12);
        }
    }

    #[test]
    fn day_values_are_valid_and_both_classes_present() {
        let ds = TweetGenerator::compact(8).generate(2000, 11);
        let mut weekend = 0usize;
        let mut weekday = 0usize;
        for o in ds.objects() {
            let d = o.cat_value(0).unwrap();
            assert!(d < 7);
            if d >= 5 {
                weekend += 1;
            } else {
                weekday += 1;
            }
        }
        assert!(weekend > 0 && weekday > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let g = TweetGenerator::compact(4);
        assert_eq!(g.generate(100, 5), g.generate(100, 5));
        assert_ne!(g.generate(100, 5), g.generate(100, 6));
    }
}
