//! Gaussian-mixture (clustered) spatial processes.
//!
//! Real geo-tagged data is heavily skewed towards population centres; the
//! clustered generator reproduces that skew and is the spatial engine behind
//! both [`super::TweetGenerator`] and [`super::PoiSynGenerator`].

use super::{rng_from_seed, sample_gaussian_point};
use asrs_geo::{Point, Rect};
use rand::rngs::SmallRng;
use rand::Rng;

/// A single spatial cluster: a Gaussian blob with a relative weight.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Cluster centre.
    pub center: Point,
    /// Standard deviation along x.
    pub sigma_x: f64,
    /// Standard deviation along y.
    pub sigma_y: f64,
    /// Relative sampling weight (need not be normalised).
    pub weight: f64,
}

/// A Gaussian-mixture generator of point locations.
#[derive(Debug, Clone)]
pub struct ClusteredGenerator {
    /// Spatial extent; samples are clamped to it.
    pub bbox: Rect,
    /// The mixture components.
    pub clusters: Vec<Cluster>,
    /// Fraction of points drawn uniformly from the whole bounding box
    /// ("background noise"), in `[0, 1]`.
    pub noise_fraction: f64,
}

impl ClusteredGenerator {
    /// Creates a generator with explicit clusters.
    pub fn new(bbox: Rect, clusters: Vec<Cluster>, noise_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&noise_fraction),
            "noise fraction must be in [0, 1]"
        );
        assert!(!clusters.is_empty(), "at least one cluster is required");
        Self {
            bbox,
            clusters,
            noise_fraction,
        }
    }

    /// Creates `k` randomly placed clusters inside `bbox`, each with a
    /// standard deviation that is a few percent of the bounding box extent.
    /// This is the default spatial process for the synthetic Tweet / POISyn
    /// analogues.
    pub fn random_clusters(bbox: Rect, k: usize, seed: u64) -> Self {
        assert!(k > 0, "at least one cluster is required");
        let mut rng = rng_from_seed(seed ^ 0x9e37_79b9_7f4a_7c15);
        let clusters = (0..k)
            .map(|_| {
                let cx = rng.gen_range(bbox.min_x..=bbox.max_x);
                let cy = rng.gen_range(bbox.min_y..=bbox.max_y);
                let sigma_x = bbox.width() * rng.gen_range(0.01..0.06);
                let sigma_y = bbox.height() * rng.gen_range(0.01..0.06);
                let weight = rng.gen_range(0.3..1.0);
                Cluster {
                    center: Point::new(cx, cy),
                    sigma_x,
                    sigma_y,
                    weight,
                }
            })
            .collect();
        Self {
            bbox,
            clusters,
            noise_fraction: 0.1,
        }
    }

    /// Samples one location.
    pub fn sample_point(&self, rng: &mut SmallRng) -> Point {
        if self.noise_fraction > 0.0 && rng.gen_bool(self.noise_fraction) {
            return Point::new(
                rng.gen_range(self.bbox.min_x..=self.bbox.max_x),
                rng.gen_range(self.bbox.min_y..=self.bbox.max_y),
            );
        }
        let total: f64 = self.clusters.iter().map(|c| c.weight).sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = &self.clusters[0];
        for c in &self.clusters {
            if pick < c.weight {
                chosen = c;
                break;
            }
            pick -= c.weight;
        }
        sample_gaussian_point(
            rng,
            chosen.center,
            chosen.sigma_x,
            chosen.sigma_y,
            &self.bbox,
        )
    }

    /// Samples `n` locations with the given seed (convenience for tests).
    pub fn sample_points(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| self.sample_point(&mut rng)).collect()
    }

    /// Returns the cluster whose centre is closest to `p` (used by the
    /// attribute models to correlate attributes with location).
    pub fn nearest_cluster(&self, p: &Point) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.clusters.iter().enumerate() {
            let d = c.center.distance_sq(p);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 50.0)
    }

    #[test]
    fn samples_stay_inside_bbox() {
        let g = ClusteredGenerator::random_clusters(bbox(), 5, 42);
        for p in g.sample_points(2000, 1) {
            assert!(g.bbox.contains_point(&p));
        }
    }

    #[test]
    fn clustering_produces_spatial_skew() {
        // With tight clusters and little noise, the densest quadrant should
        // hold far more than a quarter of the points.
        let g = ClusteredGenerator::new(
            bbox(),
            vec![Cluster {
                center: Point::new(10.0, 10.0),
                sigma_x: 2.0,
                sigma_y: 2.0,
                weight: 1.0,
            }],
            0.05,
        );
        let pts = g.sample_points(2000, 7);
        let dense = pts.iter().filter(|p| p.x < 25.0 && p.y < 25.0).count();
        assert!(
            dense > pts.len() * 3 / 4,
            "expected most points near the cluster, got {dense}/{}",
            pts.len()
        );
    }

    #[test]
    fn random_clusters_is_deterministic() {
        let a = ClusteredGenerator::random_clusters(bbox(), 4, 9).sample_points(100, 3);
        let b = ClusteredGenerator::random_clusters(bbox(), 4, 9).sample_points(100, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn nearest_cluster_identifies_closest_center() {
        let g = ClusteredGenerator::new(
            bbox(),
            vec![
                Cluster {
                    center: Point::new(10.0, 10.0),
                    sigma_x: 1.0,
                    sigma_y: 1.0,
                    weight: 1.0,
                },
                Cluster {
                    center: Point::new(90.0, 40.0),
                    sigma_x: 1.0,
                    sigma_y: 1.0,
                    weight: 1.0,
                },
            ],
            0.0,
        );
        assert_eq!(g.nearest_cluster(&Point::new(12.0, 11.0)), 0);
        assert_eq!(g.nearest_cluster(&Point::new(85.0, 39.0)), 1);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn rejects_empty_cluster_list() {
        ClusteredGenerator::new(bbox(), vec![], 0.0);
    }

    #[test]
    #[should_panic(expected = "noise fraction")]
    fn rejects_invalid_noise_fraction() {
        ClusteredGenerator::new(
            bbox(),
            vec![Cluster {
                center: Point::new(0.0, 0.0),
                sigma_x: 1.0,
                sigma_y: 1.0,
                weight: 1.0,
            }],
            1.5,
        );
    }
}
