//! The synthetic city used by the case-study reproduction (Section 7.6).
//!
//! The paper's case study runs DS-Search over 4,556 Foursquare POIs in
//! Singapore with the composite aggregator `F = ((f_D, Category, γ_all))`
//! and shows that the "Orchard" query region retrieves "Marina Bay" (another
//! shopping/entertainment epicentre) while "Bugis" — similar only in the
//! Food and Transport dimensions — is a worse match.
//!
//! The city generator builds a synthetic city with named districts whose
//! POI category mixes reproduce that structure: two shopping/nightlife
//! epicentres with nearly identical mixes, one food/transport-heavy
//! district, plus residential background.

use super::rng_from_seed;
use crate::{AttrValue, AttributeDef, AttributeKind, Dataset, Schema, SpatialObject};
use asrs_geo::{Point, Rect};
use rand::Rng;

/// POI categories of the synthetic city (a coarse version of the Foursquare
/// top-level categories used in the paper's Fig. 14).
pub const CITY_CATEGORIES: [&str; 8] = [
    "Food",
    "Shops & Service",
    "Nightlife Spot",
    "Arts & Entertainment",
    "Travel & Transport",
    "Residence",
    "Outdoors & Recreation",
    "Professional",
];

/// A named district of the synthetic city.
#[derive(Debug, Clone)]
pub struct District {
    /// Human-readable district name.
    pub name: String,
    /// The district's extent.
    pub rect: Rect,
    /// Number of POIs placed in the district.
    pub poi_count: usize,
    /// Relative category mix (one weight per [`CITY_CATEGORIES`] entry).
    pub category_mix: [f64; 8],
}

/// The generated city: a dataset plus its named districts.
#[derive(Debug, Clone)]
pub struct CityMap {
    /// All POIs of the city.
    pub dataset: Dataset,
    /// The named districts (query/candidate regions for the case study).
    pub districts: Vec<District>,
}

impl CityMap {
    /// Finds a district by name.
    pub fn district(&self, name: &str) -> Option<&District> {
        self.districts.iter().find(|d| d.name == name)
    }
}

/// Generator for the synthetic case-study city.
#[derive(Debug, Clone)]
pub struct CityGenerator {
    /// City extent.
    pub bbox: Rect,
    /// Number of background POIs scattered outside the named districts.
    pub background_pois: usize,
}

impl Default for CityGenerator {
    fn default() -> Self {
        Self {
            bbox: Rect::new(0.0, 0.0, 50.0, 30.0),
            background_pois: 2500,
        }
    }
}

impl CityGenerator {
    /// The schema of the generated city: one categorical `category`
    /// attribute labelled with [`CITY_CATEGORIES`].
    pub fn schema() -> Schema {
        Schema::new(vec![AttributeDef::new(
            "category",
            AttributeKind::categorical_labeled(CITY_CATEGORIES.to_vec()),
        )])
    }

    fn district_specs(&self) -> Vec<District> {
        let shopping_mix = [0.22, 0.30, 0.14, 0.12, 0.10, 0.02, 0.04, 0.06];
        let shopping_mix_b = [0.21, 0.29, 0.15, 0.13, 0.10, 0.02, 0.04, 0.06];
        let food_transport_mix = [0.40, 0.14, 0.03, 0.02, 0.28, 0.06, 0.03, 0.04];
        let residential_mix = [0.18, 0.08, 0.01, 0.01, 0.10, 0.45, 0.12, 0.05];
        vec![
            District {
                name: "Orchard".to_string(),
                rect: Rect::new(6.0, 18.0, 12.0, 22.0),
                poi_count: 420,
                category_mix: shopping_mix,
            },
            District {
                name: "Marina Bay".to_string(),
                rect: Rect::new(30.0, 6.0, 36.0, 10.0),
                poi_count: 430,
                category_mix: shopping_mix_b,
            },
            District {
                name: "Bugis".to_string(),
                rect: Rect::new(20.0, 20.0, 26.0, 24.0),
                poi_count: 410,
                category_mix: food_transport_mix,
            },
            District {
                name: "Heartlands".to_string(),
                rect: Rect::new(38.0, 20.0, 46.0, 26.0),
                poi_count: 500,
                category_mix: residential_mix,
            },
        ]
    }

    /// Generates the city.
    pub fn generate(&self, seed: u64) -> CityMap {
        let mut rng = rng_from_seed(seed);
        let districts = self.district_specs();
        let mut objects: Vec<SpatialObject> = Vec::new();
        let mut next_id = 0u64;

        let sample_category = |mix: &[f64; 8], rng: &mut rand::rngs::SmallRng| -> u32 {
            let total: f64 = mix.iter().sum();
            let mut pick = rng.gen_range(0.0..total);
            for (i, w) in mix.iter().enumerate() {
                if pick < *w {
                    return i as u32;
                }
                pick -= *w;
            }
            (mix.len() - 1) as u32
        };

        for d in &districts {
            for _ in 0..d.poi_count {
                let x = rng.gen_range(d.rect.min_x..d.rect.max_x);
                let y = rng.gen_range(d.rect.min_y..d.rect.max_y);
                let cat = sample_category(&d.category_mix, &mut rng);
                objects.push(SpatialObject::new(
                    next_id,
                    Point::new(x, y),
                    vec![AttrValue::Cat(cat)],
                ));
                next_id += 1;
            }
        }

        // Background POIs: mostly residential / professional, scattered over
        // the whole city.
        let background_mix = [0.20, 0.10, 0.02, 0.02, 0.12, 0.34, 0.12, 0.08];
        for _ in 0..self.background_pois {
            let x = rng.gen_range(self.bbox.min_x..self.bbox.max_x);
            let y = rng.gen_range(self.bbox.min_y..self.bbox.max_y);
            let cat = sample_category(&background_mix, &mut rng);
            objects.push(SpatialObject::new(
                next_id,
                Point::new(x, y),
                vec![AttrValue::Cat(cat)],
            ));
            next_id += 1;
        }

        CityMap {
            dataset: Dataset::new_unchecked(Self::schema(), objects),
            districts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_has_expected_structure() {
        let city = CityGenerator::default().generate(42);
        assert_eq!(city.districts.len(), 4);
        assert!(city.district("Orchard").is_some());
        assert!(city.district("Marina Bay").is_some());
        assert!(city.district("Atlantis").is_none());
        let total: usize = city.districts.iter().map(|d| d.poi_count).sum();
        assert_eq!(city.dataset.len(), total + 2500);
    }

    #[test]
    fn district_pois_lie_inside_their_rects() {
        let city = CityGenerator::default().generate(7);
        for d in &city.districts {
            let inside = city.dataset.objects_in(&d.rect).len();
            assert!(
                inside >= d.poi_count,
                "district {} should contain at least its own POIs",
                d.name
            );
        }
    }

    #[test]
    fn shopping_districts_have_similar_mixes() {
        let city = CityGenerator::default().generate(3);
        let mix = |name: &str| -> Vec<f64> {
            let d = city.district(name).unwrap();
            let objs = city.dataset.objects_in(&d.rect);
            let mut counts = vec![0f64; CITY_CATEGORIES.len()];
            for o in &objs {
                counts[o.cat_value(0).unwrap() as usize] += 1.0;
            }
            let total: f64 = counts.iter().sum();
            counts.iter().map(|c| c / total).collect()
        };
        let orchard = mix("Orchard");
        let marina = mix("Marina Bay");
        let bugis = mix("Bugis");
        let l1 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        assert!(
            l1(&orchard, &marina) < l1(&orchard, &bugis),
            "Marina Bay must resemble Orchard more than Bugis does"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CityGenerator::default().generate(9);
        let b = CityGenerator::default().generate(9);
        assert_eq!(a.dataset, b.dataset);
    }
}
