//! Uniformly distributed objects (the simplest synthetic workload).

use super::rng_from_seed;
use crate::{AttrValue, AttributeDef, AttributeKind, Dataset, Schema, SpatialObject};
use asrs_geo::{Point, Rect};
use rand::Rng;

/// Generates objects uniformly at random inside a bounding box, each with a
/// single categorical attribute.
///
/// Used by tests and micro-benchmarks where spatial skew is irrelevant.
#[derive(Debug, Clone)]
pub struct UniformGenerator {
    /// The spatial extent of the generated objects.
    pub bbox: Rect,
    /// Number of categories of the single categorical attribute.
    pub categories: usize,
    /// Coordinate quantum (0 disables quantisation).
    pub quantum: f64,
}

impl Default for UniformGenerator {
    fn default() -> Self {
        Self {
            bbox: Rect::new(0.0, 0.0, 100.0, 100.0),
            categories: 4,
            quantum: 0.0,
        }
    }
}

impl UniformGenerator {
    /// Creates a generator over the given bounding box.
    pub fn new(bbox: Rect, categories: usize) -> Self {
        Self {
            bbox,
            categories,
            quantum: 0.0,
        }
    }

    /// Sets the coordinate quantum.
    pub fn with_quantum(mut self, quantum: f64) -> Self {
        self.quantum = quantum;
        self
    }

    /// Generates `n` objects with the given seed.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let schema = Schema::new(vec![AttributeDef::new(
            "category",
            AttributeKind::categorical(self.categories.max(1)),
        )]);
        let objects = (0..n)
            .map(|id| {
                let x = super::quantize(
                    rng.gen_range(self.bbox.min_x..=self.bbox.max_x),
                    self.quantum,
                );
                let y = super::quantize(
                    rng.gen_range(self.bbox.min_y..=self.bbox.max_y),
                    self.quantum,
                );
                let cat = rng.gen_range(0..self.categories.max(1)) as u32;
                SpatialObject::new(id as u64, Point::new(x, y), vec![AttrValue::Cat(cat)])
            })
            .collect();
        Dataset::new_unchecked(schema, objects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_cardinality_inside_bbox() {
        let g = UniformGenerator::default();
        let ds = g.generate(500, 7);
        assert_eq!(ds.len(), 500);
        let bbox = ds.bounding_box().unwrap();
        assert!(g.bbox.contains_rect(&bbox));
    }

    #[test]
    fn is_deterministic_per_seed() {
        let g = UniformGenerator::new(Rect::new(-1.0, -1.0, 1.0, 1.0), 3);
        let a = g.generate(50, 11);
        let b = g.generate(50, 11);
        let c = g.generate(50, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn categories_stay_in_domain() {
        let g = UniformGenerator::new(Rect::new(0.0, 0.0, 1.0, 1.0), 5);
        let ds = g.generate(200, 3);
        for o in ds.objects() {
            assert!(o.cat_value(0).unwrap() < 5);
        }
    }

    #[test]
    fn quantum_snaps_coordinates() {
        let g = UniformGenerator::default().with_quantum(0.5);
        let ds = g.generate(100, 5);
        for o in ds.objects() {
            assert!((o.x() / 0.5 - (o.x() / 0.5).round()).abs() < 1e-9);
        }
    }
}
