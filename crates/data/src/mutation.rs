//! Dataset mutations: the delta log a generational engine applies.
//!
//! A [`Mutation`] is a serializable description of one dataset change —
//! append an object, remove an object by id, or expire an object whose TTL
//! lapsed (an expiry is a removal whose *cause* is the clock rather than a
//! caller).  The engine layer in `asrs-core` applies mutations to a
//! [`Dataset`](crate::Dataset) one generation at a time and records what it
//! applied in a [`MutationLog`], so operators can see the recent write
//! history and tests can replay a mutation sequence onto a fresh dataset to
//! prove rebuild equivalence.
//!
//! Order matters: replaying the same mutations in the same order onto the
//! same seed dataset produces a byte-identical object vector (appends go to
//! the tail, removals shift the suffix left without reordering), which is
//! the foundation of the engine's mutated-vs-rebuilt parity guarantee.

use crate::SpatialObject;
use serde::{Deserialize, Serialize};

/// One dataset change, as a plain serializable value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mutation {
    /// Append `object` at the tail of the dataset.
    Append {
        /// The object to add; its `id` must be unique in the dataset.
        object: SpatialObject,
    },
    /// Remove the object with the given id.
    Remove {
        /// Id of the object to remove.
        id: u64,
    },
    /// Remove the object with the given id because its TTL lapsed.
    /// Structurally identical to [`Mutation::Remove`]; kept distinct so the
    /// log shows *why* an object left the dataset.
    Expire {
        /// Id of the expired object.
        id: u64,
    },
}

impl Mutation {
    /// A short name for counters and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Mutation::Append { .. } => "append",
            Mutation::Remove { .. } => "remove",
            Mutation::Expire { .. } => "expire",
        }
    }
}

/// One applied mutation, stamped with the generation it produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedMutation {
    /// Generation of the engine state *after* this mutation was applied.
    pub generation: u64,
    /// The mutation that was applied.
    pub mutation: Mutation,
}

/// A bounded log of applied mutations plus lifetime counters.
///
/// The log retains the most recent `retention` entries (older entries are
/// dropped from the front); the counters cover the whole lifetime, so a
/// trimmed log still reports how much was ever applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MutationLog {
    entries: Vec<LoggedMutation>,
    retention: usize,
    /// Appends applied over the lifetime of the log.
    pub appends: u64,
    /// Caller-initiated removals applied over the lifetime of the log.
    pub removes: u64,
    /// TTL expiries applied over the lifetime of the log.
    pub expiries: u64,
}

impl MutationLog {
    /// An empty log retaining up to `retention` recent entries.
    pub fn new(retention: usize) -> Self {
        Self {
            entries: Vec::new(),
            retention: retention.max(1),
            appends: 0,
            removes: 0,
            expiries: 0,
        }
    }

    /// Records an applied mutation, trimming the oldest entry when the
    /// retention bound is exceeded.
    pub fn record(&mut self, generation: u64, mutation: Mutation) {
        match &mutation {
            Mutation::Append { .. } => self.appends += 1,
            Mutation::Remove { .. } => self.removes += 1,
            Mutation::Expire { .. } => self.expiries += 1,
        }
        self.entries.push(LoggedMutation {
            generation,
            mutation,
        });
        if self.entries.len() > self.retention {
            let excess = self.entries.len() - self.retention;
            self.entries.drain(..excess);
        }
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> &[LoggedMutation] {
        &self.entries
    }

    /// Total mutations applied over the lifetime of the log.
    pub fn total(&self) -> u64 {
        self.appends + self.removes + self.expiries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_geo::Point;

    fn obj(id: u64) -> SpatialObject {
        SpatialObject::new(id, Point::new(id as f64, 0.0), vec![])
    }

    #[test]
    fn log_counts_and_trims() {
        let mut log = MutationLog::new(2);
        log.record(1, Mutation::Append { object: obj(1) });
        log.record(2, Mutation::Remove { id: 1 });
        log.record(3, Mutation::Expire { id: 2 });
        assert_eq!((log.appends, log.removes, log.expiries), (1, 1, 1));
        assert_eq!(log.total(), 3);
        // Retention 2: the append fell off the front.
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.entries()[0].generation, 2);
        assert_eq!(log.entries()[1].mutation.kind(), "expire");
    }

    #[test]
    fn mutations_round_trip_through_json() {
        for m in [
            Mutation::Append { object: obj(7) },
            Mutation::Remove { id: 7 },
            Mutation::Expire { id: 9 },
        ] {
            let json = serde::json::to_string(&m);
            let back: Mutation = serde::json::from_str(&json).unwrap();
            assert_eq!(back, m);
        }
    }
}
