//! Spatial partitioning: longest-axis recursive splits over a dataset's
//! extent.
//!
//! A [`SpatialPartition`] carves the dataset's bounding box into `n`
//! axis-aligned regions by recursively splitting the longer axis of the
//! current region at an object-count median, so shards stay balanced on
//! clustered data.  The regions tile the extent exactly (interiors are
//! pairwise disjoint, closed regions share only their cut lines) and every
//! object is *assigned* to exactly one shard by the deterministic rule
//! "strictly below the cut goes left, at-or-above goes right", so shard
//! membership is never ambiguous for objects sitting on a cut.
//!
//! The partition is the data layout of the sharded engine in `asrs-core`:
//! one sub-dataset (and one grid index) per region.

use crate::Dataset;
use asrs_geo::Rect;

/// A spatial partition of a dataset into `n` shard regions.
///
/// Built by [`SpatialPartition::build`]; the regions tile the dataset
/// extent and [`SpatialPartition::assignment`] maps every object index to
/// the single shard that owns it.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialPartition {
    regions: Vec<Rect>,
    assignment: Vec<usize>,
}

impl SpatialPartition {
    /// Partitions `dataset` into `shards` regions (at least 1) by
    /// longest-axis recursive splitting.
    ///
    /// Degenerate inputs are handled without panicking: duplicate points,
    /// single-axis (collinear) datasets and `shards > dataset.len()` all
    /// produce valid partitions — some shards simply come out empty, with
    /// zero-area regions tiling the cut lines.
    pub fn build(dataset: &Dataset, shards: usize) -> Self {
        let shards = shards.max(1);
        let extent = dataset
            .bounding_box()
            .unwrap_or_else(|| Rect::new(0.0, 0.0, 0.0, 0.0));
        let mut partition = SpatialPartition {
            regions: Vec::with_capacity(shards),
            assignment: vec![usize::MAX; dataset.len()],
        };
        let indices: Vec<usize> = (0..dataset.len()).collect();
        partition.split(dataset, indices, extent, shards);
        debug_assert_eq!(partition.regions.len(), shards);
        debug_assert!(partition
            .assignment
            .iter()
            .all(|&s| s < shards || dataset.is_empty()));
        partition
    }

    /// Recursively splits `rect` (holding the objects at `indices`) into
    /// `k` regions, appending them to `self.regions` in deterministic
    /// left-to-right order and recording the assignment.
    fn split(&mut self, dataset: &Dataset, mut indices: Vec<usize>, rect: Rect, k: usize) {
        if k <= 1 {
            let shard = self.regions.len();
            self.regions.push(rect);
            for idx in indices {
                self.assignment[idx] = shard;
            }
            return;
        }
        let left_shards = k / 2;
        let right_shards = k - left_shards;
        // Split the longer axis so regions stay roughly square; ties go to
        // the x axis for determinism.
        let split_x = rect.width() >= rect.height();
        let coord = |idx: usize| -> f64 {
            let o = dataset.object(idx);
            if split_x {
                o.location.x
            } else {
                o.location.y
            }
        };
        // Deterministic order: by coordinate, object index breaking ties.
        indices.sort_by(|&a, &b| coord(a).total_cmp(&coord(b)).then(a.cmp(&b)));
        // The cut aims at giving the left branch its proportional share of
        // the objects.  Objects strictly below the cut go left, everything
        // at or above goes right — so runs of duplicate coordinates never
        // straddle the cut.
        let target_left = indices.len() * left_shards / k;
        let cut = if indices.is_empty() {
            if split_x {
                (rect.min_x + rect.max_x) / 2.0
            } else {
                (rect.min_y + rect.max_y) / 2.0
            }
        } else {
            coord(indices[target_left.min(indices.len() - 1)])
        };
        // Clamp into the region so the child rectangles stay valid even for
        // degenerate extents.
        let cut = if split_x {
            cut.clamp(rect.min_x, rect.max_x)
        } else {
            cut.clamp(rect.min_y, rect.max_y)
        };
        let boundary = indices.partition_point(|&idx| coord(idx) < cut);
        let right_indices = indices.split_off(boundary);
        let (left_rect, right_rect) = if split_x {
            (
                Rect::new(rect.min_x, rect.min_y, cut, rect.max_y),
                Rect::new(cut, rect.min_y, rect.max_x, rect.max_y),
            )
        } else {
            (
                Rect::new(rect.min_x, rect.min_y, rect.max_x, cut),
                Rect::new(rect.min_x, cut, rect.max_x, rect.max_y),
            )
        };
        self.split(dataset, indices, left_rect, left_shards);
        self.split(dataset, right_indices, right_rect, right_shards);
    }

    /// The shard regions, tiling the dataset extent.
    pub fn regions(&self) -> &[Rect] {
        &self.regions
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.regions.len()
    }

    /// The shard owning each object, indexed like the dataset.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The shard owning object `idx`.
    pub fn shard_of(&self, idx: usize) -> usize {
        self.assignment[idx]
    }

    /// Materialises one sub-dataset per shard, preserving the original
    /// object order within each shard (which keeps aggregate accumulation
    /// deterministic).
    pub fn sub_datasets(&self, dataset: &Dataset) -> Vec<Dataset> {
        let mut buckets: Vec<Vec<crate::SpatialObject>> =
            (0..self.shard_count()).map(|_| Vec::new()).collect();
        for (idx, object) in dataset.iter() {
            buckets[self.assignment[idx]].push(object.clone());
        }
        buckets
            .into_iter()
            .map(|objects| Dataset::new_unchecked(dataset.schema().clone(), objects))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TweetGenerator, UniformGenerator};
    use crate::{DatasetBuilder, Schema};

    /// Seeded sweep standing in for a property test: disjoint interiors,
    /// exact cover of the extent, and a unique shard per object.
    #[test]
    fn partitions_are_disjoint_cover_the_extent_and_assign_uniquely() {
        for seed in 0..5u64 {
            let ds = UniformGenerator::default().generate(180 + seed as usize * 37, seed);
            for shards in [1, 2, 3, 4, 7, 8] {
                let partition = SpatialPartition::build(&ds, shards);
                assert_eq!(partition.shard_count(), shards);
                let extent = ds.bounding_box().unwrap();
                // Regions stay inside the extent and tile it: areas add up
                // and interiors are pairwise disjoint.
                let mut area = 0.0;
                for r in partition.regions() {
                    assert!(extent.contains_rect(r), "{r} outside {extent}");
                    area += r.area();
                }
                assert!(
                    (area - extent.area()).abs() <= 1e-6 * extent.area().max(1.0),
                    "shards={shards}: areas {area} != extent {}",
                    extent.area()
                );
                for (i, a) in partition.regions().iter().enumerate() {
                    for b in partition.regions().iter().skip(i + 1) {
                        assert!(!a.interiors_intersect(b), "{a} overlaps {b}");
                    }
                }
                // Every object is assigned to exactly one shard and lies in
                // that shard's (closed) region.
                for (idx, o) in ds.iter() {
                    let shard = partition.shard_of(idx);
                    assert!(shard < shards);
                    assert!(
                        partition.regions()[shard].contains_point(&o.location),
                        "object {idx} at {} not in region {}",
                        o.location,
                        partition.regions()[shard]
                    );
                }
                // Sub-datasets recover the whole dataset, in order.
                let subs = partition.sub_datasets(&ds);
                let total: usize = subs.iter().map(Dataset::len).sum();
                assert_eq!(total, ds.len());
                for (shard, sub) in subs.iter().enumerate() {
                    let mut expected = ds
                        .iter()
                        .filter(|(idx, _)| partition.shard_of(*idx) == shard)
                        .map(|(_, o)| o.id);
                    for o in sub.objects() {
                        assert_eq!(Some(o.id), expected.next(), "order preserved");
                    }
                    assert!(expected.next().is_none());
                }
            }
        }
    }

    #[test]
    fn clustered_data_stays_balanced() {
        let ds = TweetGenerator::compact(8).generate(400, 11);
        let partition = SpatialPartition::build(&ds, 4);
        let subs = partition.sub_datasets(&ds);
        for sub in &subs {
            // Median splits keep every shard within a factor of the ideal
            // quarter even on clustered data.
            assert!(sub.len() >= 40, "shard holds only {} of 400", sub.len());
            assert!(sub.len() <= 200);
        }
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        // All-duplicate points: every object shares one location.
        let mut b = DatasetBuilder::new(Schema::empty());
        for _ in 0..10 {
            b.push(3.0, 4.0, vec![]);
        }
        let ds = b.build().unwrap();
        let partition = SpatialPartition::build(&ds, 4);
        assert_eq!(partition.shard_count(), 4);
        let owners: std::collections::HashSet<usize> =
            partition.assignment().iter().copied().collect();
        assert_eq!(owners.len(), 1, "duplicates all land in one shard");
        let subs = partition.sub_datasets(&ds);
        assert_eq!(subs.iter().map(Dataset::len).sum::<usize>(), 10);

        // Single-axis (collinear) dataset.
        let mut b = DatasetBuilder::new(Schema::empty());
        for i in 0..12 {
            b.push(i as f64, 5.0, vec![]);
        }
        let ds = b.build().unwrap();
        let partition = SpatialPartition::build(&ds, 3);
        for (idx, o) in ds.iter() {
            assert!(partition.regions()[partition.shard_of(idx)].contains_point(&o.location));
        }

        // More shards than objects: the extras are simply empty.
        let mut b = DatasetBuilder::new(Schema::empty());
        for i in 0..5 {
            b.push(i as f64, i as f64, vec![]);
        }
        let ds = b.build().unwrap();
        let partition = SpatialPartition::build(&ds, 7);
        assert_eq!(partition.shard_count(), 7);
        let subs = partition.sub_datasets(&ds);
        assert_eq!(subs.iter().map(Dataset::len).sum::<usize>(), 5);
        assert!(subs.iter().any(Dataset::is_empty));

        // Empty dataset.
        let empty = Dataset::new_unchecked(Schema::empty(), vec![]);
        let partition = SpatialPartition::build(&empty, 3);
        assert_eq!(partition.shard_count(), 3);
        assert!(partition.assignment().is_empty());

        // Zero shards clamps to one.
        assert_eq!(SpatialPartition::build(&empty, 0).shard_count(), 1);
    }

    #[test]
    fn partitions_are_deterministic() {
        let ds = UniformGenerator::default().generate(250, 3);
        let a = SpatialPartition::build(&ds, 5);
        let b = SpatialPartition::build(&ds, 5);
        assert_eq!(a, b);
    }
}
