//! Data substrate for the ASRS reproduction.
//!
//! The paper operates on *spatial objects*: points in the plane carrying a
//! set of attribute values (Section 3.1).  This crate provides:
//!
//! * [`AttributeKind`] / [`AttributeDef`] / [`Schema`] — attribute metadata:
//!   categorical attributes with a finite domain (e.g. POI category, day of
//!   the week) and numeric attributes with a declared value range (e.g.
//!   price, rating, number of visits).
//! * [`AttrValue`] — a single attribute value.
//! * [`SpatialObject`] — a location plus one value per schema attribute.
//! * [`Dataset`] — a collection of objects sharing a schema, with
//!   bounding-box, sampling and region-extraction helpers plus
//!   order-preserving [`Dataset::append`] / [`Dataset::remove_by_id`]
//!   mutators (the substrate of the generational engine in `asrs-core`).
//! * [`Mutation`] / [`MutationLog`] — serializable dataset deltas and the
//!   bounded log of what a generational engine applied.
//! * [`SpatialPartition`] — longest-axis recursive spatial partitioning of a
//!   dataset into `n` shard regions (the data layout of the sharded engine).
//! * [`io`] — a small CSV-like text format for saving and loading datasets.
//! * [`columnar`] — a bit-exact binary column-oriented encoding of datasets
//!   and mutations (the byte substrate of the `asrs-persist` snapshot and
//!   write-ahead-log formats).
//! * [`gen`] — synthetic workload generators reproducing the statistical
//!   shape of the paper's datasets (Tweet, POISyn, and the Singapore POI
//!   case-study city), plus uniform and clustered baseline generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod columnar;
mod dataset;
pub mod gen;
pub mod io;
mod mutation;
mod object;
mod partition;
mod schema;
mod value;

pub use dataset::{Dataset, DatasetBuilder};
pub use mutation::{LoggedMutation, Mutation, MutationLog};
pub use object::SpatialObject;
pub use partition::SpatialPartition;
pub use schema::{AttributeDef, AttributeKind, Schema, SchemaError};
pub use value::AttrValue;
