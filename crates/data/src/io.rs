//! A small, dependency-free text format for datasets.
//!
//! The format is line-oriented and self-describing so that generated
//! workloads can be saved once and replayed across benchmark runs:
//!
//! ```text
//! # asrs-dataset v1
//! attr <TAB> category <TAB> cat <TAB> 4 <TAB> Apartment|Supermarket|Restaurant|Bus stop
//! attr <TAB> price <TAB> num <TAB> 0 <TAB> 10
//! obj <TAB> <id> <TAB> <x> <TAB> <y> <TAB> <v1> <TAB> <v2> ...
//! ```
//!
//! Categorical values are written as their domain index, numeric values as
//! decimal floats.  Fields are tab-separated; labels use `|` separators.

use crate::{AttrValue, AttributeDef, AttributeKind, Dataset, Schema, SpatialObject};
use asrs_geo::Point;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Errors produced by dataset (de)serialisation.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file contents do not conform to the format.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Serialises a dataset to the text format.
pub fn to_string(dataset: &Dataset) -> String {
    let mut out = String::new();
    out.push_str("# asrs-dataset v1\n");
    for def in dataset.schema().attributes() {
        match &def.kind {
            AttributeKind::Categorical {
                cardinality,
                labels,
            } => {
                let labels = labels.as_ref().map(|l| l.join("|")).unwrap_or_default();
                let _ = writeln!(out, "attr\t{}\tcat\t{}\t{}", def.name, cardinality, labels);
            }
            AttributeKind::Numeric { min, max } => {
                let _ = writeln!(out, "attr\t{}\tnum\t{}\t{}", def.name, min, max);
            }
        }
    }
    for o in dataset.objects() {
        let _ = write!(out, "obj\t{}\t{}\t{}", o.id, o.location.x, o.location.y);
        for v in &o.values {
            match v {
                AttrValue::Cat(c) => {
                    let _ = write!(out, "\t{c}");
                }
                AttrValue::Num(n) => {
                    let _ = write!(out, "\t{n}");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Parses a dataset from the text format.
pub fn from_str(text: &str) -> Result<Dataset, IoError> {
    let mut attrs: Vec<AttributeDef> = Vec::new();
    let mut objects: Vec<SpatialObject> = Vec::new();
    let mut schema_done = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('\t').collect();
        match fields[0] {
            "attr" => {
                if schema_done {
                    return Err(parse_err(line, "attribute declared after objects"));
                }
                if fields.len() < 4 {
                    return Err(parse_err(line, "attr line needs at least 4 fields"));
                }
                let name = fields[1].to_string();
                match fields[2] {
                    "cat" => {
                        let cardinality: usize = fields[3]
                            .parse()
                            .map_err(|_| parse_err(line, "invalid cardinality"))?;
                        let labels = fields
                            .get(4)
                            .filter(|s| !s.is_empty())
                            .map(|s| s.split('|').map(|l| l.to_string()).collect::<Vec<_>>());
                        if let Some(ref l) = labels {
                            if l.len() != cardinality {
                                return Err(parse_err(
                                    line,
                                    "label count does not match cardinality",
                                ));
                            }
                        }
                        attrs.push(AttributeDef::new(
                            name,
                            AttributeKind::Categorical {
                                cardinality,
                                labels,
                            },
                        ));
                    }
                    "num" => {
                        if fields.len() < 5 {
                            return Err(parse_err(line, "num attr line needs min and max"));
                        }
                        let min: f64 = fields[3]
                            .parse()
                            .map_err(|_| parse_err(line, "invalid numeric min"))?;
                        let max: f64 = fields[4]
                            .parse()
                            .map_err(|_| parse_err(line, "invalid numeric max"))?;
                        attrs.push(AttributeDef::new(name, AttributeKind::numeric(min, max)));
                    }
                    other => {
                        return Err(parse_err(line, format!("unknown attribute kind {other}")))
                    }
                }
            }
            "obj" => {
                schema_done = true;
                if fields.len() != 4 + attrs.len() {
                    return Err(parse_err(
                        line,
                        format!(
                            "obj line has {} fields, expected {}",
                            fields.len(),
                            4 + attrs.len()
                        ),
                    ));
                }
                let id: u64 = fields[1]
                    .parse()
                    .map_err(|_| parse_err(line, "invalid object id"))?;
                let x: f64 = fields[2]
                    .parse()
                    .map_err(|_| parse_err(line, "invalid x coordinate"))?;
                let y: f64 = fields[3]
                    .parse()
                    .map_err(|_| parse_err(line, "invalid y coordinate"))?;
                let mut values = Vec::with_capacity(attrs.len());
                for (i, def) in attrs.iter().enumerate() {
                    let field = fields[4 + i];
                    let value = match def.kind {
                        AttributeKind::Categorical { .. } => AttrValue::Cat(
                            field
                                .parse()
                                .map_err(|_| parse_err(line, "invalid categorical value"))?,
                        ),
                        AttributeKind::Numeric { .. } => AttrValue::Num(
                            field
                                .parse()
                                .map_err(|_| parse_err(line, "invalid numeric value"))?,
                        ),
                    };
                    values.push(value);
                }
                objects.push(SpatialObject::new(id, Point::new(x, y), values));
            }
            other => return Err(parse_err(line, format!("unknown record type {other}"))),
        }
    }
    let schema = Schema::new(attrs);
    Dataset::new(schema, objects)
        .map_err(|e| parse_err(0, format!("schema validation failed: {e}")))
}

/// Writes a dataset to a file.
pub fn save<P: AsRef<Path>>(dataset: &Dataset, path: P) -> Result<(), IoError> {
    fs::write(path, to_string(dataset))?;
    Ok(())
}

/// Reads a dataset from a file.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Dataset, IoError> {
    let text = fs::read_to_string(path)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn sample() -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::new(
                "category",
                AttributeKind::categorical_labeled(vec!["A", "B", "C"]),
            ),
            AttributeDef::new("price", AttributeKind::numeric(0.0, 10.0)),
        ]);
        let mut b = DatasetBuilder::new(schema);
        b.push(1.5, -2.25, vec![AttrValue::Cat(2), AttrValue::Num(3.75)]);
        b.push(0.0, 0.0, vec![AttrValue::Cat(0), AttrValue::Num(0.0)]);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_dataset() {
        let ds = sample();
        let text = to_string(&ds);
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed.len(), ds.len());
        assert_eq!(parsed.schema(), ds.schema());
        for (a, b) in parsed.objects().zip(ds.objects()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn file_roundtrip() {
        let ds = sample();
        let dir = std::env::temp_dir().join("asrs_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.asrs");
        save(&ds, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# comment\n\nattr\tc\tcat\t2\t\nobj\t0\t1.0\t2.0\t1\n";
        let ds = from_str(text).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.object(0).cat_value(0), Some(1));
    }

    #[test]
    fn rejects_bad_cardinality() {
        let text = "attr\tc\tcat\tnope\t\n";
        assert!(matches!(
            from_str(text),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let text = "attr\tc\tcat\t2\t\nobj\t0\t1.0\t2.0\n";
        assert!(from_str(text).is_err());
    }

    #[test]
    fn rejects_out_of_domain_value() {
        let text = "attr\tc\tcat\t2\t\nobj\t0\t1.0\t2.0\t5\n";
        assert!(from_str(text).is_err());
    }

    #[test]
    fn rejects_unknown_record() {
        assert!(from_str("bogus\t1\n").is_err());
    }

    #[test]
    fn rejects_label_count_mismatch() {
        let text = "attr\tc\tcat\t3\tA|B\n";
        assert!(from_str(text).is_err());
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load("/definitely/not/a/real/path.asrs").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(format!("{err}").contains("i/o error"));
    }
}
