//! `asrs-fsck` — offline structural verification of ASRS persistence
//! directories.
//!
//! ```text
//! asrs-fsck [--quiet] DIR [DIR...]
//! ```
//!
//! For each directory the tool verifies every snapshot file (framing,
//! magic, version, CRC-32, full payload decode with shard-position bounds),
//! the write-ahead log (frame by frame, distinguishing torn tails from
//! corrupt frames), and the cross-file generation contiguity a boot
//! depends on.  Nothing is booted and nothing is modified — it is safe to
//! point at a live serving directory or a backup.
//!
//! Output: one JSON [`FsckReport`] per directory
//! on stdout (a JSON array when more than one directory is given), plus a
//! human-readable summary on stderr unless `--quiet`.
//!
//! Exit codes:
//!
//! * `0` — every directory is fully clean.
//! * `1` — at least one corruption **error** (damage boot would skip over
//!   or refuse).
//! * `2` — warnings only (torn WAL tail, stale temporary file: artifacts
//!   boot recovers from silently).
//! * `3` — usage error or an I/O failure reading a directory.

use asrs_audit::{check_dir, FsckReport};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: asrs-fsck [--quiet] DIR [DIR...]");
    ExitCode::from(3)
}

fn main() -> ExitCode {
    let mut quiet = false;
    let mut dirs: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                return usage();
            }
            _ if arg.starts_with('-') => {
                eprintln!("asrs-fsck: unknown flag {arg}");
                return usage();
            }
            _ => dirs.push(PathBuf::from(arg)),
        }
    }
    if dirs.is_empty() {
        return usage();
    }

    let mut reports: Vec<FsckReport> = Vec::new();
    for dir in &dirs {
        match check_dir(dir) {
            Ok(report) => {
                if !quiet {
                    eprint!("{}", report.summary());
                }
                reports.push(report);
            }
            Err(e) => {
                eprintln!("asrs-fsck: {}: {e}", dir.display());
                return ExitCode::from(3);
            }
        }
    }

    let json = if reports.len() == 1 {
        serde::json::to_string(&reports[0])
    } else {
        serde::json::to_string(&reports)
    };
    println!("{json}");

    if reports.iter().any(FsckReport::has_errors) {
        ExitCode::from(1)
    } else if reports.iter().any(|r| !r.is_clean()) {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
