//! The correctness wall of the ASRS workspace, gathered under one roof.
//!
//! Three layers of static verification complement the behavioural test
//! suites:
//!
//! 1. **The deep invariant auditor** (implemented in `asrs-core`, report
//!    types re-exported here) — [`AuditReport`] from
//!    [`AsrsEngine::audit`](asrs_core::AsrsEngine::audit) /
//!    [`EngineHandle::audit`](asrs_core::EngineHandle::audit), which
//!    recomputes every redundant structure of a live engine generation
//!    (grid-index suffix tables, dataset bounding boxes, shard partition
//!    disjointness/cover/ownership, planner statistics, cache generation
//!    stamps) and compares bit-for-bit.  Debug builds run it automatically
//!    after every published mutation; the HTTP server exposes it at
//!    `GET /audit`.
//! 2. **The offline store verifier** (implemented in `asrs-persist::fsck`,
//!    re-exported here) — [`check_dir`] and friends, which structurally
//!    verify a persistence directory without booting an engine: per-file
//!    magic/version/CRC, frame-by-frame WAL analysis with torn-tail
//!    classification, shard-position bounds inside snapshots, and
//!    cross-file generation contiguity.  The **`asrs-fsck`** binary in
//!    this crate wraps it in a CLI with a JSON report and meaningful exit
//!    codes.
//! 3. **The source lint** (the separate `asrs-lint` xtask) — a
//!    dependency-free scan enforcing the workspace's panic-freedom and
//!    `forbid(unsafe_code)` policies.
//!
//! This crate deliberately contains almost no logic of its own: each
//! verifier lives next to the structures it checks (where the private
//! invariants are visible), and this crate is the single doorway CI and
//! operators go through.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use asrs_core::{AuditFinding, AuditReport};
pub use asrs_persist::fsck::{
    check_dir, check_snapshot_file, check_wal_file, FsckCategory, FsckFinding, FsckReport,
    Severity, SnapshotCheck, WalCheck,
};
