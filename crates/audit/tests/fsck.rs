//! The `asrs-fsck` fixture corpus: every class of on-disk damage the
//! verifier claims to detect, manufactured deliberately and checked for
//! the right category *and* the right process exit code.
//!
//! The corpus runs the real binary (`CARGO_BIN_EXE_asrs-fsck`), so the
//! CLI surface — JSON on stdout, summaries on stderr, the 0/1/2/3 exit
//! contract — is under test, not just the library functions.

use asrs_aggregator::{CompositeAggregator, Selection};
use asrs_audit::{check_dir, check_snapshot_file, FsckCategory, Severity};
use asrs_core::AsrsEngine;
use asrs_data::columnar;
use asrs_data::gen::UniformGenerator;
use asrs_data::{AttrValue, SpatialObject};
use asrs_geo::Point;
use asrs_persist::crc::crc32;
use asrs_persist::PersistExt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asrs-fsck-fixture-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn object(id: u64) -> SpatialObject {
    SpatialObject::new(
        id,
        Point::new(20.0 + id as f64 % 17.0, 80.0 - id as f64 % 5.0),
        vec![AttrValue::Cat(id as u32 % 4)],
    )
}

/// Builds a healthy persistence directory: a snapshotted engine plus a
/// few WAL frames, the way the recovery suite leaves them.
fn healthy_dir(tag: &str, shards: usize, mutations: u64) -> PathBuf {
    let dir = temp_dir(tag);
    let ds = UniformGenerator::default().generate(160, 11);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    let mut builder = AsrsEngine::builder(ds, agg).build_index(8, 8);
    if shards > 0 {
        builder = builder.shards(shards);
    }
    let p = builder.persist_dir(&dir).build().unwrap();
    for id in 0..mutations {
        p.engine().append(object(2000 + id)).unwrap();
    }
    dir
}

fn snapshot_path(dir: &Path) -> PathBuf {
    fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "snap"))
        .expect("a snapshot exists")
}

/// Runs the real asrs-fsck binary over `dirs` and returns (exit code,
/// stdout).
fn run_fsck(dirs: &[&Path]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_asrs-fsck"))
        .arg("--quiet")
        .args(dirs)
        .output()
        .expect("asrs-fsck runs");
    (
        output.status.code().expect("fsck exits normally"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

#[test]
fn healthy_directories_exit_zero_with_a_clean_json_report() {
    let unsharded = healthy_dir("ok0", 0, 3);
    let sharded = healthy_dir("ok3", 3, 5);
    let (code, stdout) = run_fsck(&[&unsharded, &sharded]);
    assert_eq!(code, 0, "healthy directories must pass: {stdout}");
    assert!(stdout.contains("\"errors\":0"), "{stdout}");
    assert!(stdout.contains("\"warnings\":0"), "{stdout}");
    let _ = fs::remove_dir_all(&unsharded);
    let _ = fs::remove_dir_all(&sharded);
}

#[test]
fn a_flipped_crc_byte_in_a_snapshot_is_a_checksum_error() {
    let dir = healthy_dir("crcflip", 0, 0);
    let snap = snapshot_path(&dir);
    // Flip one bit of the stored CRC itself — the payload is pristine,
    // only the trailer lies.
    let mut bytes = fs::read(&snap).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(&snap, &bytes).unwrap();

    let report = check_dir(&dir).unwrap();
    let categories: Vec<_> = report
        .all_findings()
        .into_iter()
        .map(|f| f.category)
        .collect();
    assert!(
        categories.contains(&FsckCategory::ChecksumMismatch),
        "{categories:?}"
    );

    let (code, stdout) = run_fsck(&[&dir]);
    assert_eq!(code, 1, "corruption must exit nonzero: {stdout}");
    assert!(stdout.contains("ChecksumMismatch"), "{stdout}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_truncated_wal_frame_is_a_torn_tail_warning() {
    let dir = healthy_dir("torn", 0, 4);
    let wal = dir.join("wal.log");
    let full = fs::metadata(&wal).unwrap().len();
    let f = fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(full - 7).unwrap();
    drop(f);

    let report = check_dir(&dir).unwrap();
    let torn: Vec<_> = report
        .all_findings()
        .into_iter()
        .filter(|f| f.category == FsckCategory::TornTail)
        .collect();
    assert_eq!(torn.len(), 1);
    assert_eq!(torn[0].severity, Severity::Warning);
    assert_eq!(
        report.replayable_frames, 3,
        "the torn frame is not replayable"
    );

    let (code, stdout) = run_fsck(&[&dir]);
    assert_eq!(code, 2, "warnings exit 2: {stdout}");
    assert!(stdout.contains("TornTail"), "{stdout}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_generation_gap_in_the_wal_is_a_contiguity_error() {
    let dir = healthy_dir("gap", 0, 1);
    {
        let (wal, _) = asrs_persist::Wal::open(&dir.join("wal.log")).unwrap();
        wal.append(40, &asrs_data::Mutation::Remove { id: 2000 })
            .unwrap();
    }
    let report = check_dir(&dir).unwrap();
    let categories: Vec<_> = report
        .all_findings()
        .into_iter()
        .map(|f| f.category)
        .collect();
    assert!(
        categories.contains(&FsckCategory::GenerationGap)
            || categories.contains(&FsckCategory::GenerationDiscontinuity),
        "{categories:?}"
    );

    let (code, stdout) = run_fsck(&[&dir]);
    assert_eq!(code, 1, "a history gap is corruption: {stdout}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn an_out_of_bounds_shard_position_is_detected_inside_a_valid_envelope() {
    // Build the snapshot payload by hand: a real dataset, no index, one
    // shard whose single object position points far past the columns.
    // The framing (magic, version, CRC) is *valid* — only the content is
    // poisoned, so nothing but the payload bounds check can catch it.
    let dir = temp_dir("oob");
    fs::create_dir_all(&dir).unwrap();
    let ds = UniformGenerator::default().generate(50, 23);

    let mut payload = Vec::new();
    columnar::put_u64(&mut payload, 0); // generation
    columnar::encode_dataset(&ds, &mut payload);
    columnar::put_u8(&mut payload, 0); // no top-level index
    columnar::put_u8(&mut payload, 1); // sharded
    columnar::put_u64(&mut payload, 1); // one shard
    for v in [0.0, 0.0, 100.0, 100.0] {
        columnar::put_f64(&mut payload, v); // shard region
    }
    columnar::put_u64(&mut payload, 1); // one object in the shard
    columnar::put_u64(&mut payload, 999_999); // position out of bounds
    columnar::put_u8(&mut payload, 0); // no shard index

    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"ASNP");
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    let snap = dir.join(format!("snapshot-{:016x}.snap", 0));
    fs::write(&snap, &bytes).unwrap();

    let check = check_snapshot_file(&snap).unwrap();
    assert!(!check.loadable());
    assert_eq!(check.findings.len(), 1);
    assert_eq!(
        check.findings[0].category,
        FsckCategory::ShardPositionOutOfBounds
    );

    let (code, stdout) = run_fsck(&[&dir]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("ShardPositionOutOfBounds"), "{stdout}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_foreign_snapshot_file_is_a_bad_magic_error() {
    let dir = healthy_dir("magic", 0, 0);
    let snap = snapshot_path(&dir);
    let mut bytes = fs::read(&snap).unwrap();
    bytes[..4].copy_from_slice(b"NOPE");
    fs::write(&snap, &bytes).unwrap();

    let check = check_snapshot_file(&snap).unwrap();
    assert_eq!(check.findings[0].category, FsckCategory::BadMagic);
    let (code, _) = run_fsck(&[&dir]);
    assert_eq!(code, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_future_format_version_is_a_bad_version_error() {
    let dir = healthy_dir("version", 0, 0);
    let snap = snapshot_path(&dir);
    let mut bytes = fs::read(&snap).unwrap();
    bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
    fs::write(&snap, &bytes).unwrap();

    let check = check_snapshot_file(&snap).unwrap();
    assert_eq!(check.findings[0].category, FsckCategory::BadVersion);
    let (code, _) = run_fsck(&[&dir]);
    assert_eq!(code, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_three() {
    let output = Command::new(env!("CARGO_BIN_EXE_asrs-fsck"))
        .output()
        .expect("asrs-fsck runs");
    assert_eq!(
        output.status.code(),
        Some(3),
        "no directories is a usage error"
    );

    let missing = temp_dir("missing"); // never created
    let output = Command::new(env!("CARGO_BIN_EXE_asrs-fsck"))
        .arg(&missing)
        .output()
        .expect("asrs-fsck runs");
    assert_eq!(
        output.status.code(),
        Some(3),
        "unreadable directory is environmental"
    );
}
