//! Property-based tests for the geometry substrate.

use asrs_geo::{min_positive_gap, GridSpec, Point, Rect, RegionSize};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000.0..1000.0f64, -1000.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), 0.001..500.0f64, 0.001..500.0f64)
        .prop_map(|(p, w, h)| Rect::new(p.x, p.y, p.x + w, p.y + h))
}

proptest! {
    #[test]
    fn mbr_contains_both_operands(a in arb_rect(), b in arb_rect()) {
        let m = a.mbr(&b);
        prop_assert!(m.contains_rect(&a));
        prop_assert!(m.contains_rect(&b));
        // MBR is commutative.
        prop_assert_eq!(m, b.mbr(&a));
    }

    #[test]
    fn intersection_is_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(i.area() <= a.area() + 1e-9);
            prop_assert!(i.area() <= b.area() + 1e-9);
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn enlargement_is_nonnegative(a in arb_rect(), b in arb_rect()) {
        prop_assert!(a.enlargement(&b) >= -1e-9);
    }

    #[test]
    fn strict_containment_implies_closed(r in arb_rect(), p in arb_point()) {
        if r.strictly_contains_point(&p) {
            prop_assert!(r.contains_point(&p));
        }
    }

    #[test]
    fn corner_constructors_are_consistent(p in arb_point(), w in 0.01..100.0f64, h in 0.01..100.0f64) {
        let size = RegionSize::new(w, h);
        let r = Rect::from_bottom_left(p, size);
        prop_assert!((r.width() - w).abs() < 1e-9);
        prop_assert!((r.height() - h).abs() < 1e-9);
        prop_assert_eq!(r.bottom_left(), p);
        let r2 = Rect::from_top_right(r.top_right(), size);
        prop_assert!((r2.min_x - r.min_x).abs() < 1e-9);
        prop_assert!((r2.min_y - r.min_y).abs() < 1e-9);
    }

    #[test]
    fn grid_cell_of_point_roundtrip(
        cols in 1usize..40,
        rows in 1usize..40,
        fx in 0.0..1.0f64,
        fy in 0.0..1.0f64,
    ) {
        let space = Rect::new(-10.0, 5.0, 30.0, 45.0);
        let g = GridSpec::new(space, cols, rows);
        let p = Point::new(
            space.min_x + fx * space.width(),
            space.min_y + fy * space.height(),
        );
        let cell = g.cell_of_point(&p).expect("point is inside the space");
        let rect = g.cell_rect(cell.col, cell.row);
        prop_assert!(rect.contains_point(&p), "cell rect {rect} must contain {p}");
    }

    #[test]
    fn grid_contained_cells_are_subset_of_overlapping(
        cols in 1usize..30,
        rows in 1usize..30,
        r in arb_rect(),
    ) {
        let space = Rect::new(-1000.0, -1000.0, 1000.0, 1000.0);
        let g = GridSpec::new(space, cols, rows);
        let over = g.cells_overlapping(&r);
        let cont = g.cells_contained(&r);
        for c in cont.iter() {
            prop_assert!(over.contains(c));
            prop_assert!(r.contains_rect(&g.cell_rect(c.col, c.row)));
        }
        for c in over.iter() {
            prop_assert!(g.cell_rect(c.col, c.row).interiors_intersect(&r));
        }
    }

    #[test]
    fn grid_overlap_classification_is_exhaustive(
        cols in 1usize..15,
        rows in 1usize..15,
        r in arb_rect(),
    ) {
        // Every grid cell is either in the overlap range or does not
        // interior-intersect the rectangle.
        let space = Rect::new(-600.0, -600.0, 600.0, 600.0);
        let g = GridSpec::new(space, cols, rows);
        let over = g.cells_overlapping(&r);
        for row in 0..rows {
            for col in 0..cols {
                let cell_rect = g.cell_rect(col, row);
                let inside = over.contains(asrs_geo::CellIdx::new(col, row));
                prop_assert_eq!(inside, cell_rect.interiors_intersect(&r));
            }
        }
    }

    #[test]
    fn min_gap_is_a_lower_bound_on_pairwise_gaps(values in prop::collection::vec(-100.0..100.0f64, 2..30)) {
        if let Some(gap) = min_positive_gap(&values) {
            for (i, a) in values.iter().enumerate() {
                for b in values.iter().skip(i + 1) {
                    let d = (a - b).abs();
                    if d > 0.0 {
                        prop_assert!(gap <= d + 1e-12);
                    }
                }
            }
        }
    }
}
