//! Property-style tests for the geometry substrate.
//!
//! The offline build environment has no `proptest`, so the properties are
//! exercised over seeded random inputs drawn from the vendored `rand`
//! stand-in: same invariants, deterministic case generation.

use asrs_geo::{min_positive_gap, GridSpec, Point, Rect, RegionSize};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn rand_point(rng: &mut SmallRng) -> Point {
    Point::new(
        rng.gen_range(-1000.0..1000.0),
        rng.gen_range(-1000.0..1000.0),
    )
}

fn rand_rect(rng: &mut SmallRng) -> Rect {
    let p = rand_point(rng);
    let w = rng.gen_range(0.001..500.0);
    let h = rng.gen_range(0.001..500.0);
    Rect::new(p.x, p.y, p.x + w, p.y + h)
}

#[test]
fn mbr_contains_both_operands() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = rand_rect(&mut rng);
        let b = rand_rect(&mut rng);
        let m = a.mbr(&b);
        assert!(m.contains_rect(&a));
        assert!(m.contains_rect(&b));
        // MBR is commutative.
        assert_eq!(m, b.mbr(&a));
    }
}

#[test]
fn intersection_is_contained_in_both() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let a = rand_rect(&mut rng);
        let b = rand_rect(&mut rng);
        if let Some(i) = a.intersection(&b) {
            assert!(a.contains_rect(&i));
            assert!(b.contains_rect(&i));
            assert!(i.area() <= a.area() + 1e-9);
            assert!(i.area() <= b.area() + 1e-9);
        } else {
            assert!(!a.intersects(&b));
        }
    }
}

#[test]
fn enlargement_is_nonnegative() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(2000 + seed);
        let a = rand_rect(&mut rng);
        let b = rand_rect(&mut rng);
        assert!(a.enlargement(&b) >= -1e-9);
    }
}

#[test]
fn strict_containment_implies_closed() {
    for seed in 0..CASES * 4 {
        let mut rng = SmallRng::seed_from_u64(3000 + seed);
        let r = rand_rect(&mut rng);
        let p = rand_point(&mut rng);
        if r.strictly_contains_point(&p) {
            assert!(r.contains_point(&p));
        }
    }
}

#[test]
fn corner_constructors_are_consistent() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(4000 + seed);
        let p = rand_point(&mut rng);
        let w = rng.gen_range(0.01..100.0);
        let h = rng.gen_range(0.01..100.0);
        let size = RegionSize::new(w, h);
        let r = Rect::from_bottom_left(p, size);
        assert!((r.width() - w).abs() < 1e-9);
        assert!((r.height() - h).abs() < 1e-9);
        assert_eq!(r.bottom_left(), p);
        let r2 = Rect::from_top_right(r.top_right(), size);
        assert!((r2.min_x - r.min_x).abs() < 1e-9);
        assert!((r2.min_y - r.min_y).abs() < 1e-9);
    }
}

#[test]
fn grid_cell_of_point_roundtrip() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(5000 + seed);
        let cols = rng.gen_range(1usize..40);
        let rows = rng.gen_range(1usize..40);
        let fx: f64 = rng.gen_range(0.0..1.0);
        let fy: f64 = rng.gen_range(0.0..1.0);
        let space = Rect::new(-10.0, 5.0, 30.0, 45.0);
        let g = GridSpec::new(space, cols, rows);
        let p = Point::new(
            space.min_x + fx * space.width(),
            space.min_y + fy * space.height(),
        );
        let cell = g.cell_of_point(&p).expect("point is inside the space");
        let rect = g.cell_rect(cell.col, cell.row);
        assert!(rect.contains_point(&p), "cell rect {rect} must contain {p}");
    }
}

#[test]
fn grid_contained_cells_are_subset_of_overlapping() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(6000 + seed);
        let cols = rng.gen_range(1usize..30);
        let rows = rng.gen_range(1usize..30);
        let r = rand_rect(&mut rng);
        let space = Rect::new(-1000.0, -1000.0, 1000.0, 1000.0);
        let g = GridSpec::new(space, cols, rows);
        let over = g.cells_overlapping(&r);
        let cont = g.cells_contained(&r);
        for c in cont.iter() {
            assert!(over.contains(c));
            assert!(r.contains_rect(&g.cell_rect(c.col, c.row)));
        }
        for c in over.iter() {
            assert!(g.cell_rect(c.col, c.row).interiors_intersect(&r));
        }
    }
}

#[test]
fn grid_overlap_classification_is_exhaustive() {
    for seed in 0..CASES / 2 {
        let mut rng = SmallRng::seed_from_u64(7000 + seed);
        let cols = rng.gen_range(1usize..15);
        let rows = rng.gen_range(1usize..15);
        let r = rand_rect(&mut rng);
        // Every grid cell is either in the overlap range or does not
        // interior-intersect the rectangle.
        let space = Rect::new(-600.0, -600.0, 600.0, 600.0);
        let g = GridSpec::new(space, cols, rows);
        let over = g.cells_overlapping(&r);
        for row in 0..rows {
            for col in 0..cols {
                let cell_rect = g.cell_rect(col, row);
                let inside = over.contains(asrs_geo::CellIdx::new(col, row));
                assert_eq!(inside, cell_rect.interiors_intersect(&r));
            }
        }
    }
}

#[test]
fn min_gap_is_a_lower_bound_on_pairwise_gaps() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(8000 + seed);
        let len = rng.gen_range(2usize..30);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect();
        if let Some(gap) = min_positive_gap(&values) {
            for (i, a) in values.iter().enumerate() {
                for b in values.iter().skip(i + 1) {
                    let d = (a - b).abs();
                    if d > 0.0 {
                        assert!(gap <= d + 1e-12);
                    }
                }
            }
        }
    }
}
