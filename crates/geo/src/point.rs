//! Planar points.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A location in the two-dimensional plane.
///
/// Coordinates are plain `f64` values.  The workspace treats the plane as an
/// abstract Euclidean space; datasets that originate from latitude/longitude
/// pairs simply store longitude in `x` and latitude in `y`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a new point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// Euclidean (L2) distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only the
    /// ordering matters, e.g. when choosing split seeds).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to another point.
    #[inline]
    pub fn manhattan_distance(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise translation.
    #[inline]
    pub fn translate(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(3.0, -4.0);
        assert!((a.distance_sq(&b) - a.distance(&b).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn manhattan_distance_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, -4.0);
        assert_eq!(a.manhattan_distance(&b), 7.0);
    }

    #[test]
    fn translate_moves_point() {
        let p = Point::new(1.0, 1.0).translate(2.0, -3.0);
        assert_eq!(p, Point::new(3.0, -2.0));
    }

    #[test]
    fn conversions_roundtrip() {
        let p = Point::new(0.25, -0.75);
        let t: (f64, f64) = p.into();
        assert_eq!(Point::from(t), p);
    }

    #[test]
    fn origin_is_zero() {
        assert_eq!(Point::origin(), Point::new(0.0, 0.0));
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(format!("{}", Point::new(1.0, 2.0)), "(1.000000, 2.000000)");
    }
}
