//! Axis-aligned rectangles and the MBR algebra used by DS-Search.

use crate::{Point, RegionSize};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// Two containment notions are provided, mirroring the paper's semantics:
///
/// * [`Rect::contains_point`] — closed containment (boundary included).  Used
///   for bookkeeping such as "which index cell does this object fall into".
/// * [`Rect::strictly_contains_point`] — open containment (boundary
///   excluded).  Lemma 1 of the paper defines "rectangle `r_i` covers
///   location `p`" and "object `o_i` inside region `r`" with strict
///   inequalities; the search algorithms use this notion so that the
///   ASRS ↔ ASP correspondence is exact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub min_x: f64,
    /// Bottom edge.
    pub min_y: f64,
    /// Right edge.
    pub max_x: f64,
    /// Top edge.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its extreme coordinates.
    ///
    /// # Panics
    ///
    /// Panics when `min_x > max_x` or `min_y > max_y` or any coordinate is
    /// NaN.  Degenerate (zero-width or zero-height) rectangles are allowed —
    /// they appear naturally as MBRs of collinear cell sets during splitting.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(
            min_x <= max_x && min_y <= max_y,
            "invalid rectangle: [{min_x}, {max_x}] x [{min_y}, {max_y}]"
        );
        Self {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// A rectangle of the given size whose *bottom-left* corner sits at `p`.
    ///
    /// This is the candidate region associated with an ASP answer point
    /// (Theorem 1).
    #[inline]
    pub fn from_bottom_left(p: Point, size: RegionSize) -> Self {
        Self::new(p.x, p.y, p.x + size.width, p.y + size.height)
    }

    /// A rectangle of the given size whose *top-right* corner sits at `p`.
    ///
    /// This is the rectangle generated for each spatial object during the
    /// ASRS → ASP reduction (Section 4.1).
    #[inline]
    pub fn from_top_right(p: Point, size: RegionSize) -> Self {
        Self::new(p.x - size.width, p.y - size.height, p.x, p.y)
    }

    /// A rectangle of the given size centred on `p`.
    #[inline]
    pub fn from_center(p: Point, size: RegionSize) -> Self {
        Self::new(
            p.x - size.width / 2.0,
            p.y - size.height / 2.0,
            p.x + size.width / 2.0,
            p.y + size.height / 2.0,
        )
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Bottom-left corner.
    #[inline]
    pub fn bottom_left(&self) -> Point {
        Point::new(self.min_x, self.min_y)
    }

    /// Top-right corner.
    #[inline]
    pub fn top_right(&self) -> Point {
        Point::new(self.max_x, self.max_y)
    }

    /// Closed containment test (boundary points count as inside).
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Strict (open) containment test, matching the paper's Lemma 1.
    #[inline]
    pub fn strictly_contains_point(&self, p: &Point) -> bool {
        p.x > self.min_x && p.x < self.max_x && p.y > self.min_y && p.y < self.max_y
    }

    /// Returns `true` when `other` lies entirely inside `self` (closed).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Returns `true` when the closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Returns `true` when the rectangle *interiors* overlap (i.e. the
    /// intersection has positive area).  Edge-touching rectangles do not
    /// interior-intersect.
    #[inline]
    pub fn interiors_intersect(&self, other: &Rect) -> bool {
        self.min_x < other.max_x
            && other.min_x < self.max_x
            && self.min_y < other.max_y
            && other.min_y < self.max_y
    }

    /// The intersection of two rectangles, or `None` when they are disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::new(
            self.min_x.max(other.min_x),
            self.min_y.max(other.min_y),
            self.max_x.min(other.max_x),
            self.max_y.min(other.max_y),
        ))
    }

    /// The minimum bounding rectangle of two rectangles.
    #[inline]
    pub fn mbr(&self, other: &Rect) -> Rect {
        Rect::new(
            self.min_x.min(other.min_x),
            self.min_y.min(other.min_y),
            self.max_x.max(other.max_x),
            self.max_y.max(other.max_y),
        )
    }

    /// The minimum bounding rectangle of a non-empty iterator of rectangles.
    ///
    /// Returns `None` for an empty iterator.
    pub fn mbr_of<I: IntoIterator<Item = Rect>>(rects: I) -> Option<Rect> {
        let mut it = rects.into_iter();
        let first = it.next()?;
        Some(it.fold(first, |acc, r| acc.mbr(&r)))
    }

    /// The minimum bounding rectangle of a non-empty iterator of points.
    pub fn mbr_of_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect::new(first.x, first.y, first.x, first.y);
        for p in it {
            r.min_x = r.min_x.min(p.x);
            r.min_y = r.min_y.min(p.y);
            r.max_x = r.max_x.max(p.x);
            r.max_y = r.max_y.max(p.y);
        }
        Some(r)
    }

    /// Grows the rectangle by `dx` on the left/right and `dy` on the
    /// bottom/top.  Negative amounts shrink it (clamped so the result stays
    /// valid).
    #[inline]
    pub fn expanded(&self, dx: f64, dy: f64) -> Rect {
        let min_x = self.min_x - dx;
        let max_x = self.max_x + dx;
        let min_y = self.min_y - dy;
        let max_y = self.max_y + dy;
        if min_x > max_x || min_y > max_y {
            let cx = (self.min_x + self.max_x) / 2.0;
            let cy = (self.min_y + self.max_y) / 2.0;
            Rect::new(cx, cy, cx, cy)
        } else {
            Rect::new(min_x, min_y, max_x, max_y)
        }
    }

    /// The increase in area caused by growing `self` to also cover `other`.
    ///
    /// This is the cost function used by the split heuristic of Function
    /// `Split` (Section 4.4).
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.mbr(other).area() - self.area()
    }

    /// Returns `true` when the rectangle has zero area.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.width() == 0.0 || self.height() == 0.0
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.6}, {:.6}] x [{:.6}, {:.6}]",
            self.min_x, self.max_x, self.min_y, self.max_y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    #[should_panic(expected = "invalid rectangle")]
    fn new_rejects_inverted_coordinates() {
        Rect::new(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn corner_constructors_agree_on_extent() {
        let size = RegionSize::new(2.0, 4.0);
        let p = Point::new(10.0, 20.0);
        let bl = Rect::from_bottom_left(p, size);
        let tr = Rect::from_top_right(Point::new(12.0, 24.0), size);
        assert_eq!(bl, tr);
        let c = Rect::from_center(Point::new(11.0, 22.0), size);
        assert_eq!(c, bl);
    }

    #[test]
    fn width_height_area() {
        let r = Rect::new(1.0, 2.0, 4.0, 8.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 6.0);
        assert_eq!(r.area(), 18.0);
        assert_eq!(r.center(), Point::new(2.5, 5.0));
    }

    #[test]
    fn containment_closed_vs_strict() {
        let r = unit();
        let boundary = Point::new(0.0, 0.5);
        let interior = Point::new(0.5, 0.5);
        assert!(r.contains_point(&boundary));
        assert!(!r.strictly_contains_point(&boundary));
        assert!(r.strictly_contains_point(&interior));
        assert!(!r.contains_point(&Point::new(1.5, 0.5)));
    }

    #[test]
    fn contains_rect_includes_boundary() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::new(0.0, 0.0, 5.0, 10.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
    }

    #[test]
    fn intersection_of_overlapping_rects() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 3.0, 3.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(Rect::new(1.0, 1.0, 2.0, 2.0)));
    }

    #[test]
    fn touching_rects_intersect_but_interiors_do_not() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert!(!a.interiors_intersect(&b));
        assert_eq!(a.intersection(&b).unwrap().area(), 0.0);
    }

    #[test]
    fn disjoint_rects_have_no_intersection() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn mbr_covers_both_inputs() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(3.0, -1.0, 4.0, 0.5);
        let m = a.mbr(&b);
        assert!(m.contains_rect(&a));
        assert!(m.contains_rect(&b));
        assert_eq!(m, Rect::new(0.0, -1.0, 4.0, 1.0));
    }

    #[test]
    fn mbr_of_iterator() {
        let rects = vec![
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(2.0, 2.0, 3.0, 3.0),
            Rect::new(-1.0, 0.5, 0.0, 0.75),
        ];
        let m = Rect::mbr_of(rects).unwrap();
        assert_eq!(m, Rect::new(-1.0, 0.0, 3.0, 3.0));
        assert!(Rect::mbr_of(std::iter::empty()).is_none());
    }

    #[test]
    fn mbr_of_points_covers_all() {
        let pts = vec![
            Point::new(1.0, 1.0),
            Point::new(-2.0, 3.0),
            Point::new(0.0, -1.0),
        ];
        let m = Rect::mbr_of_points(pts.clone()).unwrap();
        for p in &pts {
            assert!(m.contains_point(p));
        }
        assert!(Rect::mbr_of_points(std::iter::empty()).is_none());
    }

    #[test]
    fn enlargement_is_zero_for_contained_rect() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert_eq!(outer.enlargement(&inner), 0.0);
        assert!(inner.enlargement(&outer) > 0.0);
    }

    #[test]
    fn expanded_grows_and_shrinks() {
        let r = unit().expanded(1.0, 2.0);
        assert_eq!(r, Rect::new(-1.0, -2.0, 2.0, 3.0));
        // Shrinking past the centre collapses to the centre point.
        let collapsed = unit().expanded(-5.0, -5.0);
        assert!(collapsed.is_degenerate());
        assert_eq!(collapsed.center(), Point::new(0.5, 0.5));
    }

    #[test]
    fn degenerate_rect_detection() {
        assert!(Rect::new(0.0, 0.0, 0.0, 5.0).is_degenerate());
        assert!(!unit().is_degenerate());
    }
}
