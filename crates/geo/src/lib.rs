//! Geometry substrate for the ASRS (attribute-aware similar region search)
//! reproduction.
//!
//! This crate provides the small set of planar, axis-aligned geometric
//! primitives that every algorithm in the workspace manipulates:
//!
//! * [`Point`] — a location in the plane.
//! * [`Rect`] — an axis-aligned rectangle with the containment semantics used
//!   by the paper (strict containment for "object inside region" /
//!   "rectangle covers point", see Lemma 1 of the paper).
//! * [`RegionSize`] — the `a × b` extent of a query region.
//! * [`GridSpec`] — a uniform grid laid over a rectangle, mapping between
//!   continuous coordinates and discrete cells.  Both the `Discretize`
//!   procedure of DS-Search (Section 4.3) and the grid index of GI-DS
//!   (Section 5.2) are built on top of it.
//! * [`Accuracy`] — the GPS horizontal/vertical accuracy constants ΔX / ΔY
//!   from Definition 7, used by the drop condition (Definition 8).
//!
//! The crate is dependency-light and purely computational so that it can be
//! unit- and property-tested exhaustively.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod accuracy;
mod grid;
mod point;
mod rect;
mod size;

pub use accuracy::{min_positive_gap, Accuracy};
pub use grid::{CellIdx, CellRange, GridSpec};
pub use point::Point;
pub use rect::Rect;
pub use size::RegionSize;

/// Numerical tolerance used when comparing floating point coordinates for
/// approximate equality in tests and assertions.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when two floating point values are equal within
/// [`EPSILON`] (absolute tolerance).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}
