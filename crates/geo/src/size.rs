//! Query region sizes (`a × b` in the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The extent of a query region: width `a` and height `b`.
///
/// The ASRS problem fixes the size of both the query region and every
/// candidate region to the same `a × b` extent (Definition 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionSize {
    /// Width of the region (`a`).
    pub width: f64,
    /// Height of the region (`b`).
    pub height: f64,
}

impl RegionSize {
    /// Creates a new region size.
    ///
    /// The values are stored verbatim; a meaningful query size must be
    /// strictly positive and finite ([`RegionSize::is_valid`]), which the
    /// search layer enforces when a query is validated — constructing a
    /// degenerate size never panics.
    #[inline]
    pub const fn new(width: f64, height: f64) -> Self {
        Self { width, height }
    }

    /// Returns `true` when both dimensions are strictly positive and
    /// finite, i.e. the size describes a real region.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.width > 0.0 && self.height > 0.0 && self.width.is_finite() && self.height.is_finite()
    }

    /// A square region of the given side length.
    #[inline]
    pub fn square(side: f64) -> Self {
        Self::new(side, side)
    }

    /// Area of the region.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Scales both dimensions by `k` (used for the paper's `k·q` query sizes).
    #[inline]
    pub fn scaled(&self, k: f64) -> Self {
        Self::new(self.width * k, self.height * k)
    }
}

impl fmt::Display for RegionSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} x {:.6}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_positive_dimensions() {
        let s = RegionSize::new(2.0, 3.0);
        assert_eq!(s.area(), 6.0);
    }

    #[test]
    fn degenerate_sizes_construct_but_fail_validity() {
        assert!(!RegionSize::new(0.0, 1.0).is_valid());
        assert!(!RegionSize::new(1.0, -1.0).is_valid());
        assert!(!RegionSize::new(f64::NAN, 1.0).is_valid());
        assert!(!RegionSize::new(1.0, f64::INFINITY).is_valid());
        assert!(RegionSize::new(2.0, 3.0).is_valid());
    }

    #[test]
    fn square_has_equal_sides() {
        let s = RegionSize::square(1.5);
        assert_eq!(s.width, s.height);
    }

    #[test]
    fn scaled_multiplies_both_dimensions() {
        let s = RegionSize::new(2.0, 4.0).scaled(2.5);
        assert_eq!(s.width, 5.0);
        assert_eq!(s.height, 10.0);
    }
}
