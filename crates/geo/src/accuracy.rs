//! GPS horizontal / vertical accuracy (Definition 7 of the paper).
//!
//! The drop condition of DS-Search (Definition 8) stops the discretize–split
//! recursion once grid cells become smaller than half of the minimum distance
//! between distinct rectangle-edge coordinates.  That minimum distance is
//! bounded below by the resolution of the positioning technology, so the
//! paper treats it as a constant ΔX / ΔY independent of the dataset
//! cardinality.

use serde::{Deserialize, Serialize};

/// Horizontal (ΔX) and vertical (ΔY) coordinate accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accuracy {
    /// Minimum gap between distinct x coordinates of rectangle edges (ΔX).
    pub dx: f64,
    /// Minimum gap between distinct y coordinates of rectangle edges (ΔY).
    pub dy: f64,
}

impl Accuracy {
    /// Creates an accuracy descriptor.
    ///
    /// The values are stored verbatim; a meaningful accuracy must be
    /// strictly positive and finite ([`Accuracy::is_valid`]), which the
    /// search layer enforces when a configuration is validated —
    /// constructing an invalid accuracy never panics.
    #[inline]
    pub const fn new(dx: f64, dy: f64) -> Self {
        Self { dx, dy }
    }

    /// Returns `true` when both components are strictly positive and
    /// finite.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.dx > 0.0 && self.dy > 0.0 && self.dx.is_finite() && self.dy.is_finite()
    }

    /// The accuracy the paper reports for the Tweet dataset
    /// (ΔX = ΔY = 10⁻⁸ degrees).
    #[inline]
    pub fn gps_default() -> Self {
        Self::new(1e-8, 1e-8)
    }

    /// Estimates the accuracy from the edge coordinates of a set of
    /// rectangles, falling back to `floor` when all coordinates coincide on
    /// an axis (e.g. a single object).
    ///
    /// `xs` and `ys` are the multisets of x and y coordinates of rectangle
    /// edges (both edges per rectangle).
    pub fn from_edge_coordinates(xs: &[f64], ys: &[f64], floor: Accuracy) -> Self {
        let dx = min_positive_gap(xs)
            .unwrap_or(floor.dx)
            .max(floor.dx.min(f64::MAX));
        let dy = min_positive_gap(ys)
            .unwrap_or(floor.dy)
            .max(floor.dy.min(f64::MAX));
        // Never report an accuracy below the floor: coordinates closer than
        // the positioning resolution are numerical noise and would make the
        // drop condition unreachable in a reasonable number of splits.
        Self::new(dx.max(floor.dx), dy.max(floor.dy))
    }
}

/// Returns the smallest strictly positive gap between any two values in
/// `values`, or `None` when fewer than two distinct values exist.
///
/// Runs in `O(n log n)`.
pub fn min_positive_gap(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.len() < 2 {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
    let mut best: Option<f64> = None;
    for w in sorted.windows(2) {
        let gap = w[1] - w[0];
        if gap > 0.0 {
            best = Some(match best {
                Some(b) => b.min(gap),
                None => gap,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_gap_of_distinct_values() {
        let vals = [5.0, 1.0, 3.0, 3.5];
        assert_eq!(min_positive_gap(&vals), Some(0.5));
    }

    #[test]
    fn min_gap_ignores_duplicates() {
        let vals = [1.0, 1.0, 1.0, 2.0];
        assert_eq!(min_positive_gap(&vals), Some(1.0));
    }

    #[test]
    fn min_gap_none_for_identical_or_short_input() {
        assert_eq!(min_positive_gap(&[1.0, 1.0]), None);
        assert_eq!(min_positive_gap(&[1.0]), None);
        assert_eq!(min_positive_gap(&[]), None);
    }

    #[test]
    fn min_gap_skips_non_finite() {
        let vals = [1.0, f64::NAN, 2.5, f64::INFINITY];
        assert_eq!(min_positive_gap(&vals), Some(1.5));
    }

    #[test]
    fn invalid_accuracies_construct_but_fail_validity() {
        assert!(!Accuracy::new(0.0, 1.0).is_valid());
        assert!(!Accuracy::new(1.0, f64::NAN).is_valid());
        assert!(Accuracy::new(1e-8, 1e-8).is_valid());
    }

    #[test]
    fn gps_default_matches_paper() {
        let a = Accuracy::gps_default();
        assert_eq!(a.dx, 1e-8);
        assert_eq!(a.dy, 1e-8);
    }

    #[test]
    fn from_edge_coordinates_uses_observed_gap() {
        let xs = [0.0, 1.0, 4.0];
        let ys = [0.0, 10.0];
        let acc = Accuracy::from_edge_coordinates(&xs, &ys, Accuracy::new(1e-9, 1e-9));
        assert_eq!(acc.dx, 1.0);
        assert_eq!(acc.dy, 10.0);
    }

    #[test]
    fn from_edge_coordinates_falls_back_to_floor() {
        let xs = [2.0, 2.0];
        let ys: Vec<f64> = vec![];
        let acc = Accuracy::from_edge_coordinates(&xs, &ys, Accuracy::new(0.5, 0.25));
        assert_eq!(acc.dx, 0.5);
        assert_eq!(acc.dy, 0.25);
    }

    #[test]
    fn from_edge_coordinates_never_reports_below_floor() {
        let xs = [0.0, 1e-12];
        let ys = [0.0, 1e-12];
        let acc = Accuracy::from_edge_coordinates(&xs, &ys, Accuracy::new(1e-8, 1e-8));
        assert_eq!(acc.dx, 1e-8);
        assert_eq!(acc.dy, 1e-8);
    }
}
