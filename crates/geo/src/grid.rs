//! Uniform grids over a rectangular space.
//!
//! Both core procedures of the paper are grid-based:
//!
//! * `Discretize` (Section 4.3) lays an `n_col × n_row` grid over the space
//!   currently being searched and classifies cells as *clean* or *dirty*.
//! * The grid index of GI-DS (Section 5.2) lays an `s_x × s_y` grid over the
//!   whole dataset and attaches an attribute summary table to every cell.
//!
//! [`GridSpec`] captures the purely geometric part of both: the mapping
//! between continuous coordinates and discrete cells, and the computation of
//! which cells a rectangle intersects or fully covers.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A cell position in a grid: column index (x direction) and row index
/// (y direction), both zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellIdx {
    /// Column (x) index.
    pub col: usize,
    /// Row (y) index.
    pub row: usize,
}

impl CellIdx {
    /// Creates a new cell index.
    #[inline]
    pub const fn new(col: usize, row: usize) -> Self {
        Self { col, row }
    }
}

/// A half-open rectangular range of cells: columns `col_start..col_end` and
/// rows `row_start..row_end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellRange {
    /// First column (inclusive).
    pub col_start: usize,
    /// One past the last column (exclusive).
    pub col_end: usize,
    /// First row (inclusive).
    pub row_start: usize,
    /// One past the last row (exclusive).
    pub row_end: usize,
}

impl CellRange {
    /// An empty range.
    #[inline]
    pub const fn empty() -> Self {
        Self {
            col_start: 0,
            col_end: 0,
            row_start: 0,
            row_end: 0,
        }
    }

    /// Creates a new range. Callers are responsible for `start <= end`.
    #[inline]
    pub const fn new(col_start: usize, col_end: usize, row_start: usize, row_end: usize) -> Self {
        Self {
            col_start,
            col_end,
            row_start,
            row_end,
        }
    }

    /// Returns `true` when the range covers no cell.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.col_start >= self.col_end || self.row_start >= self.row_end
    }

    /// Number of cells in the range.
    #[inline]
    pub fn len(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            (self.col_end - self.col_start) * (self.row_end - self.row_start)
        }
    }

    /// Iterates over all `(col, row)` pairs in the range, row-major.
    pub fn iter(&self) -> impl Iterator<Item = CellIdx> + '_ {
        let r = *self;
        (r.row_start..r.row_end)
            .flat_map(move |row| (r.col_start..r.col_end).map(move |col| CellIdx::new(col, row)))
    }

    /// Returns `true` when the given cell lies in the range.
    #[inline]
    pub fn contains(&self, cell: CellIdx) -> bool {
        cell.col >= self.col_start
            && cell.col < self.col_end
            && cell.row >= self.row_start
            && cell.row < self.row_end
    }
}

/// A uniform `cols × rows` grid laid over a rectangular space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    space: Rect,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
}

impl GridSpec {
    /// Creates a grid with `cols × rows` cells over `space`.
    ///
    /// # Panics
    ///
    /// Panics when `cols` or `rows` is zero.  A degenerate (zero-area) space
    /// is allowed; its cells are degenerate too but coordinate mapping still
    /// works (everything maps to cell 0 along the degenerate axis).
    pub fn new(space: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        let cell_w = space.width() / cols as f64;
        let cell_h = space.height() / rows as f64;
        Self {
            space,
            cols,
            rows,
            cell_w,
            cell_h,
        }
    }

    /// The space covered by the grid.
    #[inline]
    pub fn space(&self) -> &Rect {
        &self.space
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cols * self.rows
    }

    /// Width of a single cell.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.cell_w
    }

    /// Height of a single cell.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.cell_h
    }

    /// X coordinate of the left edge of column `col` (valid for
    /// `col ∈ 0..=cols`, where `cols` gives the right edge of the grid).
    #[inline]
    pub fn col_x(&self, col: usize) -> f64 {
        if col >= self.cols {
            self.space.max_x
        } else {
            self.space.min_x + col as f64 * self.cell_w
        }
    }

    /// Y coordinate of the bottom edge of row `row` (valid for
    /// `row ∈ 0..=rows`).
    #[inline]
    pub fn row_y(&self, row: usize) -> f64 {
        if row >= self.rows {
            self.space.max_y
        } else {
            self.space.min_y + row as f64 * self.cell_h
        }
    }

    /// The rectangle spanned by cell `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics when the cell is out of range.
    pub fn cell_rect(&self, col: usize, row: usize) -> Rect {
        assert!(col < self.cols && row < self.rows, "cell out of range");
        Rect::new(
            self.col_x(col),
            self.row_y(row),
            self.col_x(col + 1),
            self.row_y(row + 1),
        )
    }

    /// Flattened (row-major) linear index for a cell.
    #[inline]
    pub fn linear_index(&self, col: usize, row: usize) -> usize {
        row * self.cols + col
    }

    /// Returns the cell containing point `p`, clamped to the grid when the
    /// point sits on the far boundary; returns `None` when the point is
    /// outside the grid space.
    pub fn cell_of_point(&self, p: &Point) -> Option<CellIdx> {
        if !self.space.contains_point(p) {
            return None;
        }
        Some(self.clamped_cell_of_point(p))
    }

    /// Returns the cell whose extent contains point `p`, clamping the result
    /// to the valid cell range (points outside the space map to the nearest
    /// border cell).
    pub fn clamped_cell_of_point(&self, p: &Point) -> CellIdx {
        let col = if self.cell_w > 0.0 {
            ((p.x - self.space.min_x) / self.cell_w).floor()
        } else {
            0.0
        };
        let row = if self.cell_h > 0.0 {
            ((p.y - self.space.min_y) / self.cell_h).floor()
        } else {
            0.0
        };
        let col = (col.max(0.0) as usize).min(self.cols - 1);
        let row = (row.max(0.0) as usize).min(self.rows - 1);
        CellIdx::new(col, row)
    }

    /// Cells whose *interior* overlaps the interior of `r`, i.e. cells that
    /// `r` fully or partially covers in the sense of Section 4.3.
    ///
    /// Cells that only touch `r` along an edge are excluded: with the
    /// paper's strict-containment semantics such a rectangle covers no point
    /// of the cell.
    pub fn cells_overlapping(&self, r: &Rect) -> CellRange {
        let Some(clip) = self.space.intersection(r) else {
            return CellRange::empty();
        };
        if clip.width() <= 0.0 && self.space.width() > 0.0 {
            return CellRange::empty();
        }
        if clip.height() <= 0.0 && self.space.height() > 0.0 {
            return CellRange::empty();
        }
        let (col_start, col_end) = self.axis_overlap(clip.min_x, clip.max_x, true);
        let (row_start, row_end) = self.axis_overlap(clip.min_y, clip.max_y, false);
        CellRange::new(col_start, col_end, row_start, row_end)
    }

    /// Cells that lie entirely inside `r` (closed containment), i.e. cells
    /// that `r` *fully covers*: every interior point of such a cell is
    /// strictly covered by `r`.
    pub fn cells_contained(&self, r: &Rect) -> CellRange {
        let Some(clip) = self.space.intersection(r) else {
            return CellRange::empty();
        };
        let (col_start, col_end) = self.axis_contained(clip.min_x, clip.max_x, true);
        let (row_start, row_end) = self.axis_contained(clip.min_y, clip.max_y, false);
        if col_start >= col_end || row_start >= row_end {
            CellRange::empty()
        } else {
            CellRange::new(col_start, col_end, row_start, row_end)
        }
    }

    /// Computes the half-open index range of cells whose interior overlaps
    /// `[lo, hi]` along one axis.
    fn axis_overlap(&self, lo: f64, hi: f64, x_axis: bool) -> (usize, usize) {
        let (n, cell, origin) = if x_axis {
            (self.cols, self.cell_w, self.space.min_x)
        } else {
            (self.rows, self.cell_h, self.space.min_y)
        };
        if cell <= 0.0 {
            // Degenerate axis: the single layer of cells overlaps everything
            // that reached this point (the clip already succeeded).
            return (0, n);
        }
        let edge = |i: usize| -> f64 {
            if x_axis {
                self.col_x(i)
            } else {
                self.row_y(i)
            }
        };
        // First cell i such that edge(i + 1) > lo.
        let mut start = (((lo - origin) / cell).floor().max(0.0)) as usize;
        start = start.min(n);
        while start < n && edge(start + 1) <= lo {
            start += 1;
        }
        while start > 0 && edge(start) > lo {
            start -= 1;
        }
        if start < n && edge(start + 1) <= lo {
            start += 1;
        }
        // One past the last cell i such that edge(i) < hi.
        let mut end = (((hi - origin) / cell).ceil().max(0.0)) as usize;
        end = end.min(n);
        while end > 0 && edge(end - 1) >= hi {
            end -= 1;
        }
        while end < n && edge(end) < hi {
            end += 1;
        }
        (start.min(end), end)
    }

    /// Computes the half-open index range of cells entirely contained in
    /// `[lo, hi]` along one axis.
    fn axis_contained(&self, lo: f64, hi: f64, x_axis: bool) -> (usize, usize) {
        let (n, cell, origin) = if x_axis {
            (self.cols, self.cell_w, self.space.min_x)
        } else {
            (self.rows, self.cell_h, self.space.min_y)
        };
        if cell <= 0.0 {
            // Degenerate cells are contained in any interval that clips.
            return (0, n);
        }
        let edge = |i: usize| -> f64 {
            if x_axis {
                self.col_x(i)
            } else {
                self.row_y(i)
            }
        };
        // First cell i with edge(i) >= lo.
        let mut start = (((lo - origin) / cell).ceil().max(0.0)) as usize;
        start = start.min(n);
        while start > 0 && edge(start - 1) >= lo {
            start -= 1;
        }
        while start < n && edge(start) < lo {
            start += 1;
        }
        // One past the last cell i with edge(i + 1) <= hi.
        let mut end = (((hi - origin) / cell).floor().max(0.0)) as usize;
        end = end.min(n);
        while end < n && edge(end + 1) <= hi {
            end += 1;
        }
        while end > 0 && edge(end) > hi {
            end -= 1;
        }
        (start.min(end), end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid10() -> GridSpec {
        GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 10, 10)
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        GridSpec::new(Rect::new(0.0, 0.0, 1.0, 1.0), 0, 5);
    }

    #[test]
    fn cell_rect_tiles_the_space() {
        let g = grid10();
        assert_eq!(g.cell_rect(0, 0), Rect::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(g.cell_rect(9, 9), Rect::new(9.0, 9.0, 10.0, 10.0));
        assert_eq!(g.cell_width(), 1.0);
        assert_eq!(g.num_cells(), 100);
    }

    #[test]
    fn cell_of_point_maps_interior_and_boundary() {
        let g = grid10();
        assert_eq!(
            g.cell_of_point(&Point::new(0.5, 0.5)),
            Some(CellIdx::new(0, 0))
        );
        assert_eq!(
            g.cell_of_point(&Point::new(9.99, 9.99)),
            Some(CellIdx::new(9, 9))
        );
        // The far boundary clamps into the last cell.
        assert_eq!(
            g.cell_of_point(&Point::new(10.0, 10.0)),
            Some(CellIdx::new(9, 9))
        );
        assert_eq!(g.cell_of_point(&Point::new(10.5, 0.0)), None);
    }

    #[test]
    fn clamped_cell_never_escapes_grid() {
        let g = grid10();
        assert_eq!(
            g.clamped_cell_of_point(&Point::new(-5.0, 50.0)),
            CellIdx::new(0, 9)
        );
    }

    #[test]
    fn cells_overlapping_partial_rect() {
        let g = grid10();
        let r = Rect::new(1.5, 2.5, 3.5, 4.5);
        let range = g.cells_overlapping(&r);
        assert_eq!(range, CellRange::new(1, 4, 2, 5));
    }

    #[test]
    fn cells_overlapping_excludes_edge_touch() {
        let g = grid10();
        // Rectangle exactly aligned to cell boundaries [2,4] x [2,4].
        let r = Rect::new(2.0, 2.0, 4.0, 4.0);
        let range = g.cells_overlapping(&r);
        // Only the two interior columns/rows overlap; cells at columns 1 and 4
        // merely touch the rectangle edge.
        assert_eq!(range, CellRange::new(2, 4, 2, 4));
    }

    #[test]
    fn cells_contained_requires_full_cover() {
        let g = grid10();
        let r = Rect::new(1.5, 2.5, 5.5, 6.5);
        // Fully covered cells: columns 2..5 (cells [2,3),[3,4),[4,5)), rows 3..6.
        assert_eq!(g.cells_contained(&r), CellRange::new(2, 5, 3, 6));
        // Overlapping cells are a superset.
        assert_eq!(g.cells_overlapping(&r), CellRange::new(1, 6, 2, 7));
    }

    #[test]
    fn contained_range_is_subset_of_overlap_range() {
        let g = GridSpec::new(Rect::new(-3.0, -7.0, 13.0, 5.0), 7, 9);
        let r = Rect::new(-1.3, -4.2, 8.7, 2.9);
        let over = g.cells_overlapping(&r);
        let cont = g.cells_contained(&r);
        for c in cont.iter() {
            assert!(over.contains(c));
            assert!(r.contains_rect(&g.cell_rect(c.col, c.row)));
        }
        for c in over.iter() {
            assert!(g.cell_rect(c.col, c.row).interiors_intersect(&r));
        }
    }

    #[test]
    fn rect_outside_space_yields_empty_ranges() {
        let g = grid10();
        let r = Rect::new(20.0, 20.0, 30.0, 30.0);
        assert!(g.cells_overlapping(&r).is_empty());
        assert!(g.cells_contained(&r).is_empty());
    }

    #[test]
    fn small_rect_inside_one_cell() {
        let g = grid10();
        let r = Rect::new(3.2, 4.1, 3.4, 4.3);
        assert_eq!(g.cells_overlapping(&r), CellRange::new(3, 4, 4, 5));
        assert!(g.cells_contained(&r).is_empty());
    }

    #[test]
    fn cell_range_iteration_and_len() {
        let r = CellRange::new(1, 3, 2, 4);
        let cells: Vec<_> = r.iter().collect();
        assert_eq!(cells.len(), r.len());
        assert_eq!(r.len(), 4);
        assert!(r.contains(CellIdx::new(2, 3)));
        assert!(!r.contains(CellIdx::new(3, 3)));
        assert!(CellRange::empty().is_empty());
        assert_eq!(CellRange::empty().len(), 0);
    }

    #[test]
    fn linear_index_is_row_major() {
        let g = grid10();
        assert_eq!(g.linear_index(0, 0), 0);
        assert_eq!(g.linear_index(3, 2), 23);
    }

    #[test]
    fn degenerate_space_still_maps_points() {
        let g = GridSpec::new(Rect::new(0.0, 0.0, 0.0, 10.0), 4, 4);
        assert_eq!(
            g.clamped_cell_of_point(&Point::new(0.0, 5.0)),
            CellIdx::new(0, 2)
        );
    }
}
