//! Figure 13: the MaxRS adaptation of DS-Search compared against the
//! Optimal Enclosure (OE) sweep-line algorithm — (a) effect of the query
//! rectangle size, (b) scalability with the cardinality.

use asrs_baseline::OptimalEnclosure;
use asrs_bench::{tweet_dataset, unit_query_size};
use asrs_core::MaxRsSearch;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_fig13a(c: &mut Criterion) {
    let dataset = tweet_dataset(30_000, 17);
    let unit = unit_query_size(&dataset);
    let mut group = c.benchmark_group("fig13a/rect-size-30k");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for k in [1.0, 10.0, 20.0, 30.0] {
        let size = unit.scaled(k);
        group.bench_with_input(BenchmarkId::new("DS-Search", k as u64), &size, |b, s| {
            b.iter(|| MaxRsSearch::new(&dataset, *s).search().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("OE", k as u64), &size, |b, s| {
            b.iter(|| OptimalEnclosure::new(&dataset, *s).search().unwrap());
        });
    }
    group.finish();
}

fn bench_fig13b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13b/scalability");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for n in [10_000usize, 25_000, 50_000] {
        let dataset = tweet_dataset(n, 29);
        let size = unit_query_size(&dataset).scaled(10.0);
        group.bench_with_input(BenchmarkId::new("DS-Search", n), &size, |b, s| {
            b.iter(|| MaxRsSearch::new(&dataset, *s).search().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("OE", n), &size, |b, s| {
            b.iter(|| OptimalEnclosure::new(&dataset, *s).search().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig13a, bench_fig13b);
criterion_main!(benches);
