//! Figure 9: DS-Search runtime as a function of the discretisation grid
//! granularity `n_col = n_row ∈ {10, 20, 30, 40, 50}`.

use asrs_bench::Workload;
use asrs_core::{DsSearch, SearchConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const N: usize = 20_000;

fn bench_fig09(c: &mut Criterion) {
    for workload in [Workload::Tweet, Workload::PoiSyn] {
        let dataset = workload.dataset(N, 7);
        let aggregator = workload.aggregator(&dataset);
        let mut group = c.benchmark_group(format!("fig09/{}-{}k", workload.name(), N / 1000));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
        for k in [1.0, 10.0] {
            let query = workload.query(&dataset, k);
            for granularity in [10usize, 20, 30, 40, 50] {
                let config = SearchConfig::new()
                    .with_grid(granularity, granularity)
                    .unwrap();
                group.bench_with_input(
                    BenchmarkId::new(format!("{}q", k as u64), granularity),
                    &query,
                    |b, q| {
                        let solver = DsSearch::with_config(&dataset, &aggregator, config.clone());
                        b.iter(|| solver.search(q).unwrap());
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig09);
criterion_main!(benches);
