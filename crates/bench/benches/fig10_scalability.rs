//! Figure 10: scalability of DS-Search vs the sweep-line baseline with the
//! dataset cardinality (query size 10q).
//!
//! The baseline is quadratic, so it is only benchmarked up to 5k objects
//! here; the `experiments` binary extends the sweep with single runs.

use asrs_baseline::SweepBase;
use asrs_bench::Workload;
use asrs_core::DsSearch;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_fig10(c: &mut Criterion) {
    for workload in [Workload::Tweet, Workload::PoiSyn] {
        let mut group = c.benchmark_group(format!("fig10/{}", workload.name()));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
        for n in [1_000usize, 2_500, 5_000, 10_000, 20_000] {
            let dataset = workload.dataset(n, 11);
            let aggregator = workload.aggregator(&dataset);
            let query = workload.query(&dataset, 10.0);
            group.bench_with_input(BenchmarkId::new("DS-Search", n), &query, |b, q| {
                let solver = DsSearch::new(&dataset, &aggregator);
                b.iter(|| solver.search(q).unwrap());
            });
            if n <= 5_000 {
                group.bench_with_input(BenchmarkId::new("Base", n), &query, |b, q| {
                    let solver = SweepBase::new(&dataset, &aggregator);
                    b.iter(|| solver.search(q).unwrap());
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
