//! Figure 12: runtime of the (1+δ)-approximate solution (app-GIDS) as a
//! function of δ and the dataset cardinality, for both composite
//! aggregators F1 and F2.

use asrs_bench::Workload;
use asrs_core::{GiDsSearch, GridIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_fig12(c: &mut Criterion) {
    for workload in [Workload::Tweet, Workload::PoiSyn] {
        let mut group = c.benchmark_group(format!("fig12/{}", workload.name()));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
        for n in [20_000usize, 40_000] {
            let dataset = workload.dataset(n, 5);
            let aggregator = workload.aggregator(&dataset);
            let index =
                GridIndex::build(&dataset, &aggregator, 128, 128).expect("non-empty dataset");
            let query = workload.query(&dataset, 10.0);
            for delta in [0.1, 0.2, 0.3, 0.4] {
                group.bench_with_input(
                    BenchmarkId::new(format!("n={n}"), format!("delta={delta}")),
                    &query,
                    |b, q| {
                        let solver = GiDsSearch::new(&dataset, &aggregator, &index);
                        b.iter(|| solver.search_approx(q, delta).unwrap());
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
