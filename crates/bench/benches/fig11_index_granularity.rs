//! Figure 11: GI-DS with grid-index granularities 64, 128 and 256 compared
//! against plain DS-Search, as a function of the query rectangle size.

use asrs_bench::Workload;
use asrs_core::{DsSearch, GiDsSearch, GridIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const N: usize = 30_000;

fn bench_fig11(c: &mut Criterion) {
    for workload in [Workload::Tweet, Workload::PoiSyn] {
        let dataset = workload.dataset(N, 3);
        let aggregator = workload.aggregator(&dataset);
        let indexes: Vec<(usize, GridIndex)> = [64usize, 128, 256]
            .iter()
            .map(|&g| {
                (
                    g,
                    GridIndex::build(&dataset, &aggregator, g, g).expect("non-empty dataset"),
                )
            })
            .collect();
        let mut group = c.benchmark_group(format!("fig11/{}-{}k", workload.name(), N / 1000));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
        for k in [1.0, 4.0, 7.0, 10.0] {
            let query = workload.query(&dataset, k);
            group.bench_with_input(BenchmarkId::new("DS-Search", k as u64), &query, |b, q| {
                let solver = DsSearch::new(&dataset, &aggregator);
                b.iter(|| solver.search(q).unwrap());
            });
            for (granularity, index) in &indexes {
                group.bench_with_input(
                    BenchmarkId::new(format!("{granularity}-GI-DS"), k as u64),
                    &query,
                    |b, q| {
                        let solver = GiDsSearch::new(&dataset, &aggregator, index);
                        b.iter(|| solver.search(q).unwrap());
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
