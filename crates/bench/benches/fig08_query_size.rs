//! Figure 8: runtime vs query rectangle size (q, 4q, 7q, 10q) for
//! DS-Search and the sweep-line baseline, on the Tweet and POISyn
//! analogues.
//!
//! The paper uses 1M objects; the Criterion bench uses a reduced
//! cardinality so that the O(n²) baseline remains measurable.  The
//! `experiments` binary runs the same sweep at larger sizes.

use asrs_baseline::SweepBase;
use asrs_bench::Workload;
use asrs_core::DsSearch;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const N: usize = 3_000;

fn bench_fig08(c: &mut Criterion) {
    for workload in [Workload::Tweet, Workload::PoiSyn] {
        let dataset = workload.dataset(N, 42);
        let aggregator = workload.aggregator(&dataset);
        let mut group = c.benchmark_group(format!("fig08/{}-{}k", workload.name(), N / 1000));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
        for k in [1.0, 4.0, 7.0, 10.0] {
            let query = workload.query(&dataset, k);
            group.bench_with_input(BenchmarkId::new("DS-Search", k as u64), &query, |b, q| {
                let solver = DsSearch::new(&dataset, &aggregator);
                b.iter(|| solver.search(q).unwrap());
            });
            group.bench_with_input(BenchmarkId::new("Base", k as u64), &query, |b, q| {
                let solver = SweepBase::new(&dataset, &aggregator);
                b.iter(|| solver.search(q).unwrap());
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig08);
criterion_main!(benches);
