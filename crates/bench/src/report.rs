//! Plain-text table rendering for the `experiments` binary.

use std::fmt::Write as _;
use std::time::Duration;

/// Formats a duration as milliseconds with a sensible precision.
pub fn format_duration(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1000.0;
    if ms >= 100.0 {
        format!("{ms:.0} ms")
    } else if ms >= 1.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{:.0} µs", ms * 1000.0)
    }
}

/// A simple fixed-column text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut line = String::new();
        for (h, w) in self.header.iter().zip(&widths) {
            let _ = write!(line, "| {h:w$} ");
        }
        let _ = writeln!(out, "{line}|");
        let mut sep = String::new();
        for w in &widths {
            let _ = write!(sep, "|{}", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}|");
        for row in &self.rows {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = row.get(i).unwrap_or(&empty);
                let _ = write!(line, "| {cell:w$} ");
            }
            let _ = writeln!(out, "{line}|");
        }
        out
    }

    /// Renders and prints the table.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_millis(250)), "250 ms");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.5 ms");
        assert_eq!(format_duration(Duration::from_micros(20)), "20 µs");
    }

    #[test]
    fn table_renders_all_rows_and_headers() {
        let mut t = Table::new("Demo", &["a", "long header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["xxxx".into(), "y".into(), "z".into()]);
        let rendered = t.render();
        assert!(rendered.contains("## Demo"));
        assert!(rendered.contains("long header"));
        assert!(rendered.contains("xxxx"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn missing_cells_render_empty() {
        let mut t = Table::new("Sparse", &["a", "b"]);
        t.row(vec!["only".into()]);
        let rendered = t.render();
        assert!(rendered.contains("only"));
    }
}
