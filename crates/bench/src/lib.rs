//! Benchmark harness reproducing the evaluation of the ASRS paper
//! (Section 7): workload builders for the Tweet / POISyn analogues, the
//! paper's composite aggregators F1 and F2, query constructions, and
//! plain-text reporting helpers used by the `experiments` binary and the
//! Criterion benches (one bench per figure, see `benches/`).
//!
//! The harness runs the same parameter sweeps as the paper at
//! laptop-friendly cardinalities; `EXPERIMENTS.md` documents the mapping
//! and records measured results next to the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;
pub mod workloads;

pub use report::{format_duration, Table};
pub use workloads::{
    f1_aggregator, f1_query, f2_aggregator, f2_query, poisyn_dataset, tweet_dataset,
    unit_query_size, Workload,
};
