//! Workload builders matching the paper's experimental setup (Section 7.1).

use asrs_aggregator::{CompositeAggregator, FeatureVector, Selection, Weights};
use asrs_core::AsrsQuery;
use asrs_data::gen::{PoiSynGenerator, TweetGenerator};
use asrs_data::Dataset;
use asrs_geo::RegionSize;

/// Which of the paper's two synthetic dataset analogues to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Tweet-like data with a day-of-week attribute (composite aggregator F1).
    Tweet,
    /// POISyn-like data with visits and rating attributes (composite
    /// aggregator F2).
    PoiSyn,
}

impl Workload {
    /// Generates the dataset with `n` objects.
    pub fn dataset(&self, n: usize, seed: u64) -> Dataset {
        match self {
            Workload::Tweet => tweet_dataset(n, seed),
            Workload::PoiSyn => poisyn_dataset(n, seed),
        }
    }

    /// Builds the matching composite aggregator.
    pub fn aggregator(&self, dataset: &Dataset) -> CompositeAggregator {
        match self {
            Workload::Tweet => f1_aggregator(dataset),
            Workload::PoiSyn => f2_aggregator(dataset),
        }
    }

    /// Builds the matching query for a region of `k` query units.
    ///
    /// The paper sets the query targets to "the maximum a region can have"
    /// (T6/T7 for F1, v_max for F2); the builders approximate that with the
    /// expected content of a `k·q` region in a dense cluster, so the target
    /// scales with both the cardinality and the query size.
    pub fn query(&self, dataset: &Dataset, k: f64) -> AsrsQuery {
        let size = unit_query_size(dataset).scaled(k);
        // Expected number of objects in a k·q region under uniformity,
        // boosted for the density skew of the clustered generators.
        let expected = dataset.len() as f64 * (k * k / 1_000_000.0) * 30.0;
        match self {
            Workload::Tweet => f1_query(size, expected),
            Workload::PoiSyn => f2_query(size, expected),
        }
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Tweet => "Tweet",
            Workload::PoiSyn => "POISyn",
        }
    }
}

/// The Tweet-analogue dataset (clustered, day-of-week attribute).
pub fn tweet_dataset(n: usize, seed: u64) -> Dataset {
    TweetGenerator::compact(24).generate(n, seed)
}

/// The POISyn-analogue dataset (clustered, visits + rating attributes).
pub fn poisyn_dataset(n: usize, seed: u64) -> Dataset {
    PoiSynGenerator::compact(24).generate(n, seed)
}

/// The unit query size `q`: the paper defines `q = (W/1000) × (H/1000)`
/// where `W × H` is the minimum rectangle enclosing all objects.
pub fn unit_query_size(dataset: &Dataset) -> RegionSize {
    let bbox = dataset
        .padded_bounding_box(1.0)
        .expect("datasets used in benchmarks are non-empty");
    RegionSize::new(bbox.width() / 1000.0, bbox.height() / 1000.0)
}

/// Composite aggregator F1: the distribution of objects over the day of
/// the week (7 dimensions).
pub fn f1_aggregator(dataset: &Dataset) -> CompositeAggregator {
    CompositeAggregator::builder(dataset.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .expect("Tweet-analogue schema has day_of_week")
}

/// The F1 query of Section 7.1: representation `(0, 0, 0, 0, 0, T6, T7)`
/// (only weekend posts) with weights `(1/5, …, 1/5, 1/2, 1/2)`.
///
/// `expected_in_region` approximates "the maximum number of tweets on a
/// weekend day a region of the query size can have".
pub fn f1_query(size: RegionSize, expected_in_region: f64) -> AsrsQuery {
    let t = (expected_in_region / 2.0).max(5.0);
    AsrsQuery::new(
        size,
        FeatureVector::new(vec![0.0, 0.0, 0.0, 0.0, 0.0, t, t]),
        Weights::new(vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.5, 0.5]),
    )
}

/// Composite aggregator F2: the sum of visits and the average rating.
pub fn f2_aggregator(dataset: &Dataset) -> CompositeAggregator {
    CompositeAggregator::builder(dataset.schema())
        .sum("visits", Selection::All)
        .average("rating", Selection::All)
        .build()
        .expect("POISyn-analogue schema has visits and rating")
}

/// The F2 query of Section 7.1: representation `(v_max, 10)` with weights
/// `(1/v_max, 1/10)`.
///
/// `expected_in_region` approximates the number of POIs a region of the
/// query size can hold; `v_max` is the corresponding visit total.
pub fn f2_query(size: RegionSize, expected_in_region: f64) -> AsrsQuery {
    let vmax = (expected_in_region * 250.0).max(500.0);
    AsrsQuery::new(
        size,
        FeatureVector::new(vec![vmax, 10.0]),
        Weights::new(vec![1.0 / vmax, 0.1]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_core::DsSearch;

    #[test]
    fn unit_size_is_a_thousandth_of_the_extent() {
        let ds = tweet_dataset(500, 1);
        let bbox = ds.padded_bounding_box(1.0).unwrap();
        let q = unit_query_size(&ds);
        assert!((q.width - bbox.width() / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn workload_builders_produce_consistent_queries() {
        for workload in [Workload::Tweet, Workload::PoiSyn] {
            let ds = workload.dataset(400, 7);
            let agg = workload.aggregator(&ds);
            let query = workload.query(&ds, 10.0);
            assert!(query.validate(&agg).is_ok(), "{}", workload.name());
            // The query must be solvable end to end.
            let result = DsSearch::new(&ds, &agg).search(&query).unwrap();
            assert!(result.distance.is_finite());
        }
    }

    #[test]
    fn f1_query_targets_weekends_only() {
        let q = f1_query(RegionSize::new(1.0, 1.0), 1000.0);
        assert_eq!(&q.target.as_slice()[..5], &[0.0; 5]);
        assert!(q.target[5] > 0.0 && q.target[6] > 0.0);
    }
}
