//! The case study of Section 7.6 (Figures 14 and 15) on the synthetic
//! city: category profiles of the three districts, their pairwise
//! distances, and the region DS-Search retrieves for the "Orchard" query.
//!
//! Run with `cargo run --release -p asrs-bench --bin casestudy`.

use asrs_aggregator::{weighted_distance, CompositeAggregator, DistanceMetric, Selection, Weights};
use asrs_bench::Table;
use asrs_core::{AsrsEngine, QueryRequest};
use asrs_data::gen::{CityGenerator, CITY_CATEGORIES};

fn main() {
    let city = CityGenerator::default().generate(2019);
    let dataset = &city.dataset;
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .distribution("category", Selection::All)
        .build()
        .expect("category attribute exists");

    println!(
        "# Case study (Section 7.6): {} POIs, {} districts\n",
        dataset.len(),
        city.districts.len()
    );

    // Figure 14b analogue: the category distribution of each district.
    let mut header: Vec<&str> = vec!["district"];
    header.extend(CITY_CATEGORIES.iter());
    let mut profile_table = Table::new("Figure 14b: category distribution per district", &header);
    let mut reps = Vec::new();
    for name in ["Orchard", "Marina Bay", "Bugis"] {
        let district = city.district(name).expect("district exists");
        let rep = aggregator.aggregate_region(dataset, &district.rect);
        let mut row = vec![name.to_string()];
        row.extend(rep.iter().map(|v| format!("{v:.0}")));
        profile_table.row(row);
        reps.push((name, rep));
    }
    profile_table.print();

    // Figure 15 analogue: pairwise distances show Marina Bay is the match.
    let weights = Weights::uniform(aggregator.feature_dim());
    let mut distance_table = Table::new(
        "Figure 15: weighted L1 distance to the Orchard query region",
        &["candidate district", "distance"],
    );
    let orchard_rep = reps[0].1.clone();
    for (name, rep) in reps.iter().skip(1) {
        let d = weighted_distance(&orchard_rep, rep, &weights, DistanceMetric::L1);
        distance_table.row(vec![name.to_string(), format!("{d:.1}")]);
    }
    distance_table.print();

    // The actual search with Orchard as the query-by-example region,
    // submitted through the engine's declarative API.
    let orchard = city.district("Orchard").expect("district exists").rect;
    let engine = AsrsEngine::builder(dataset.clone(), aggregator)
        .build()
        .expect("valid configuration");
    let query = engine
        .query_from_example(&orchard)
        .expect("district rectangles are non-degenerate");
    let request = QueryRequest::similar(query);
    println!("{}", engine.plan(&request).expect("plannable").explain());
    let response = engine.submit(&request).unwrap();
    let result = response.best().expect("similar yields a best region");
    println!(
        "[{}] retrieved region {} at distance {:.2} in {:?}",
        response.backend, result.region, result.distance, response.stats.elapsed
    );
    let marina = city.district("Marina Bay").expect("district exists").rect;
    println!(
        "that region overlaps Marina Bay: {} (the query region itself always matches perfectly)",
        result.region.intersects(&marina)
    );
}
