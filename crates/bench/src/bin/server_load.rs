//! Load generator for the `asrs-server` serving layer.
//!
//! Boots an engine plus server in-process, then drives it over real
//! sockets with keep-alive HTTP clients issuing a mixed workload drawn
//! from a fixed request pool (so repeats exercise the query-result cache).
//! Writes `BENCH_server.json` with throughput, latency percentiles and the
//! cache hit rate — the serving-side companion to the paper-figure
//! benchmarks.
//!
//! ```text
//! server_load [--smoke] [--objects N] [--clients C] [--requests R]
//!             [--cache N] [--shards S] [--append-every A] [--batch B]
//!             [--rate R[,R2,..]] [--persist-dir PATH] [--boot-bench]
//!             [--boot-objects N] [--out PATH]
//! ```
//!
//! Without `--shards` one row is written (a single JSON object, as
//! before).  With `--shards S` the same workload is measured twice — once
//! unsharded, once on an `EngineBuilder::shards(S)` engine — and the file
//! holds a JSON array of the two rows, making the sharding axis directly
//! comparable.
//!
//! `--append-every A` adds a *mixed read/append* row: every client issues
//! a `POST /append` (a fresh object with a unique id) after every `A`
//! queries, so the measured window spans live generational mutations —
//! cache hit rate under churn, mutation throughput and the final engine
//! generation are reported.  A second mixed row repeats the run with
//! `POST /append_batch` payloads of `--batch B` objects (default 16) in
//! place of the solo appends, measuring the bulk-ingest path: one commit
//! (one generation, one WAL fsync) per payload.
//!
//! The worker pool is sized from `--clients` (never below the config
//! default), so a C-client run is actually served by ≥ C workers — the
//! committed open-loop sweep once ran every client against a single
//! worker, which measured the queue, not the engine.
//!
//! `--rate R` switches the generator from closed-loop (send, wait, send)
//! to **open-loop** (constant aggregate rate of `R` requests/second split
//! evenly across clients).  Each request has a *scheduled* start time and
//! latency is measured from the schedule, not from the actual send —
//! closed-loop latencies silently pause the clock while the server makes
//! the client wait (coordinated omission), so they understate
//! latency-under-saturation; the open-loop numbers do not.  A
//! comma-separated list (`--rate 100,200,400`) sweeps the offered rate and
//! emits one row per point — the latency-vs-offered-rate curve.
//!
//! `--persist-dir PATH` boots every phase's engine through the
//! `asrs-persist` subsystem (snapshot + write-ahead log under `PATH`),
//! attaches the handle to the server (so `POST /snapshot` and the
//! persistence counters in `/metrics` are live), and smoke-checks both.
//!
//! `--boot-bench` adds a boot-time row: a live engine serves a stream of
//! acknowledged mutations and checkpoints, then its current state is
//! recovered two ways — a snapshot boot, and a build-from-scratch that
//! re-parses the text file, rebuilds the index, and re-applies every
//! mutation the snapshot folded in.  The row reports both durations,
//! their ratio, and a bit-identity check between the two engines (full
//! response parity is also replayed at ≤100k objects).  At 1M+ objects
//! the snapshot boot must win by ≥10×.
//! `--boot-objects N` sizes the boot-bench dataset independently of the
//! serving phases, so one invocation can serve at 10k objects and still
//! measure boot time at 1M.
//!
//! Cache metrics are reported per phase: the cache-identity probe that
//! precedes the measured run warms the cache, so the steady-state hit rate
//! is computed from the *delta* of the cache counters across the measured
//! window rather than the lifetime totals (which would let warm-up hits
//! inflate the number).
//!
//! `--smoke` shrinks everything to a boot → one-round-trip → clean-shutdown
//! check suitable for CI.  The process exits non-zero on any protocol
//! error, non-200 response, or a cached response that is not byte-identical
//! to its cold computation.

use asrs_bench::report::Table;
use asrs_bench::workloads::Workload;
use asrs_core::{AsrsEngine, QueryRequest};
use asrs_geo::RegionSize;
use asrs_persist::PersistExt;
use asrs_server::{AsrsServer, HttpClient, ServerConfig};
use serde::Serialize;
use std::net::SocketAddr;
use std::time::Instant;

#[derive(Debug, Clone)]
struct Args {
    smoke: bool,
    objects: usize,
    clients: usize,
    requests_per_client: usize,
    cache_capacity: usize,
    shards: usize,
    /// Issue one append per client after every N queries (0 = read-only).
    append_every: usize,
    /// Objects per `/append_batch` payload in the bulk-ingest row.
    batch: usize,
    /// Open-loop aggregate request rates in req/s (empty = closed loop
    /// only; several values sweep the offered-rate axis).
    rates: Vec<usize>,
    /// Boot every phase through the persistence subsystem rooted here.
    persist_dir: Option<String>,
    /// Measure boot-from-snapshot vs build-from-scratch.
    boot_bench: bool,
    /// Dataset size for the boot bench; defaults to `objects`.
    boot_objects: Option<usize>,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            smoke: false,
            objects: 20_000,
            clients: 4,
            requests_per_client: 200,
            cache_capacity: 1024,
            shards: 0,
            append_every: 0,
            batch: 16,
            rates: Vec::new(),
            persist_dir: None,
            boot_bench: false,
            boot_objects: None,
            out: "BENCH_server.json".to_string(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut num = |name: &str| -> usize {
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{name} expects a number"))
            };
            match flag.as_str() {
                "--smoke" => args.smoke = true,
                "--objects" => args.objects = num("--objects"),
                "--clients" => args.clients = num("--clients"),
                "--requests" => args.requests_per_client = num("--requests"),
                "--cache" => args.cache_capacity = num("--cache"),
                "--shards" => args.shards = num("--shards"),
                "--append-every" => args.append_every = num("--append-every"),
                "--batch" => args.batch = num("--batch"),
                "--rate" => {
                    let list = it.next().expect("--rate expects a number or comma list");
                    args.rates = list
                        .split(',')
                        .map(|v| {
                            v.trim()
                                .parse()
                                .unwrap_or_else(|_| panic!("--rate got {v:?}, want a number"))
                        })
                        .collect();
                }
                "--persist-dir" => {
                    args.persist_dir = Some(it.next().expect("--persist-dir expects a path"));
                }
                "--boot-bench" => args.boot_bench = true,
                "--boot-objects" => args.boot_objects = Some(num("--boot-objects")),
                "--out" => args.out = it.next().expect("--out expects a path"),
                other => panic!("unknown flag {other:?}"),
            }
        }
        if args.smoke {
            args.objects = args.objects.min(2_000);
            args.boot_objects = args.boot_objects.map(|n| n.min(2_000));
            args.clients = args.clients.min(2);
            args.requests_per_client = args.requests_per_client.min(20);
        }
        args
    }
}

/// A fixed pool of mixed requests; clients cycle through it, so every
/// request past the first pool lap is a cache hit.
fn request_pool(workload: Workload, engine: &AsrsEngine) -> Vec<QueryRequest> {
    let dataset = engine.dataset();
    let dataset = &*dataset;
    let mut pool = Vec::new();
    for k in [10.0, 20.0, 40.0, 80.0] {
        pool.push(QueryRequest::similar(workload.query(dataset, k)));
    }
    pool.push(QueryRequest::top_k(workload.query(dataset, 25.0), 3));
    pool.push(QueryRequest::approximate(
        workload.query(dataset, 30.0),
        0.25,
    ));
    pool.push(QueryRequest::batch(vec![
        workload.query(dataset, 15.0),
        workload.query(dataset, 35.0),
    ]));
    pool.push(QueryRequest::similar(workload.query(dataset, 50.0)).with_budget_ms(120_000));
    let bbox = dataset
        .bounding_box()
        .expect("generated dataset is non-empty");
    pool.push(QueryRequest::max_rs(RegionSize::new(
        bbox.width() / 50.0,
        bbox.height() / 50.0,
    )));
    pool
}

#[derive(Debug, Default)]
struct ClientOutcome {
    latencies_us: Vec<u64>,
    mutations_applied: usize,
    http_errors: usize,
    protocol_errors: usize,
}

/// One client's work order: the shared query pool, its own append bodies
/// (unique ids), and — in open-loop mode — the fixed schedule its sends
/// must follow regardless of how slowly the server answers.
struct ClientPlan<'a> {
    addr: SocketAddr,
    bodies: &'a [String],
    offset: usize,
    requests: usize,
    /// Issue `append_bodies[j]` after every `append_every` queries
    /// (0 = read-only client).
    append_every: usize,
    append_bodies: Vec<String>,
    /// Mutation endpoint the append bodies target: `/append` (one object
    /// per request) or `/append_batch` (`append_objects` per request).
    append_path: &'static str,
    /// Objects each accepted append request ingests.
    append_objects: usize,
    /// Open-loop schedule: request `i` is *due* at `start + i · interval`,
    /// and its latency is measured from that due time.  `None` = closed
    /// loop (latency from the actual send).
    schedule: Option<(Instant, f64)>,
}

fn drive_client(plan: ClientPlan<'_>) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    let Ok(mut client) = HttpClient::connect(plan.addr) else {
        outcome.protocol_errors += 1;
        return outcome;
    };
    let mut next_append = 0usize;
    for i in 0..plan.requests {
        // Open loop: wait for the scheduled send time (if the server is
        // behind, don't wait — the backlog is exactly what we measure),
        // and clock the request from the schedule.
        let scheduled = plan.schedule.map(|(start, interval_s)| {
            let due = start + std::time::Duration::from_secs_f64(interval_s * i as f64);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            due
        });
        let is_append = plan.append_every > 0
            && i > 0
            && i % plan.append_every == 0
            && next_append < plan.append_bodies.len();
        let (path, body) = if is_append {
            let body = &plan.append_bodies[next_append];
            next_append += 1;
            (plan.append_path, body)
        } else {
            (
                "/query",
                &plan.bodies[(plan.offset + i) % plan.bodies.len()],
            )
        };
        let started = Instant::now();
        match client.request("POST", path, body) {
            Ok((200, _)) => {
                if is_append {
                    outcome.mutations_applied += plan.append_objects;
                } else {
                    let from = scheduled.unwrap_or(started);
                    outcome.latencies_us.push(from.elapsed().as_micros() as u64);
                }
            }
            Ok((status, response)) => {
                eprintln!("unexpected status {status}: {response}");
                outcome.http_errors += 1;
            }
            Err(e) => {
                eprintln!("protocol error: {e}");
                outcome.protocol_errors += 1;
                // Reconnect and keep going; a load generator should not
                // stop at the first hiccup.
                match HttpClient::connect(plan.addr) {
                    Ok(fresh) => client = fresh,
                    Err(_) => return outcome,
                }
            }
        }
    }
    outcome
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 * p).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64 / 1000.0
}

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    smoke: bool,
    objects: usize,
    clients: usize,
    requests_per_client: usize,
    cache_capacity: usize,
    shards: usize,
    /// One append per client after every N queries (0 = read-only phase).
    append_every: usize,
    /// Objects per mutation request: 0 = read-only phase, 1 = solo
    /// `POST /append`, >1 = `POST /append_batch` payloads of this size
    /// (each one atomic commit — one generation, one WAL fsync).
    ingest_batch_size: usize,
    /// Open-loop aggregate request rate in req/s (0 = closed loop); when
    /// set, latencies are measured from the schedule, so queueing delay
    /// under saturation is included (no coordinated omission).
    open_loop_rate_rps: usize,
    server_workers: usize,
    requests_total: usize,
    /// Appends applied during the measured window.
    mutations_applied: usize,
    /// Engine generation when the measured window closed.
    final_generation: u64,
    http_errors: usize,
    protocol_errors: usize,
    elapsed_ms: f64,
    throughput_rps: f64,
    latency_ms_p50: f64,
    latency_ms_p99: f64,
    latency_ms_mean: f64,
    latency_ms_max: f64,
    /// Cache counters of the measured (steady-state) window only; the
    /// warm-up probe's hit and misses are reported separately below.
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    warmup_cache_hits: u64,
    warmup_cache_misses: u64,
    cached_response_byte_identical: bool,
}

/// Runs one measured serving phase (build → probe → load → metrics →
/// shutdown) with the given shard count (`0` = classic single engine),
/// mutation mix (`append_every` queries per append, `0` = read-only;
/// `batch` > 1 switches the appends to `/append_batch` payloads of that
/// many objects), and offered rate (`0` = closed loop).
fn run_phase(
    args: &Args,
    shards: usize,
    append_every: usize,
    batch: usize,
    rate: usize,
) -> BenchReport {
    let workload = Workload::Tweet;
    eprintln!(
        "building engine: {} objects, cache capacity {}, shards {}, append-every {} (x{}), rate {} ...",
        args.objects, args.cache_capacity, shards, append_every, batch.max(1), rate
    );
    let dataset = workload.dataset(args.objects, 42);
    let aggregator = workload.aggregator(&dataset);
    let mut builder = AsrsEngine::builder(dataset, aggregator)
        .build_index(32, 32)
        .cache_capacity(args.cache_capacity);
    if shards > 0 {
        builder = builder.shards(shards);
    }
    // With a persistence root every phase gets its own subdirectory (the
    // phases differ in shard count, and a snapshot from one would be
    // rejected when restored into the other's topology).
    let (engine, persist) = match &args.persist_dir {
        Some(root) => {
            let dir = format!("{root}/phase-s{shards}-a{append_every}-r{rate}");
            let persistent = builder
                .persist_dir(&dir)
                .build()
                .expect("persistent engine boots");
            let (engine, handle, boot) = persistent.into_parts();
            eprintln!(
                "persistence at {dir}: cold_start={} replayed={}",
                boot.cold_start, boot.replayed_entries
            );
            (engine, Some(handle))
        }
        None => (builder.build().expect("engine builds"), None),
    };
    let pool = request_pool(workload, &engine);
    let bodies: Vec<String> = pool.iter().map(serde::json::to_string).collect();

    // Size the worker pool from the client count (never below the config
    // default): a C-client load otherwise serializes behind however many
    // workers `available_parallelism` happened to report — the committed
    // open-loop sweep once measured 4 clients against 1 worker.
    let mut config = ServerConfig::default();
    config.workers = config.workers.max(args.clients);
    let server_workers = config.workers;
    let mut server =
        AsrsServer::bind(engine.handle(), "127.0.0.1:0", config).expect("server binds");
    if let Some(handle) = &persist {
        server = server.with_persistence(handle.clone());
    }
    let server = server.start().expect("server starts");
    let addr = server.addr();
    eprintln!("serving on http://{addr}");

    // Persistence smoke: POST /snapshot must answer 200 and the metrics
    // payload must carry the persistence counters.
    if persist.is_some() {
        let mut probe = HttpClient::connect(addr).expect("snapshot client connects");
        let (status, body) = probe.request("POST", "/snapshot", "").expect("snapshot");
        assert_eq!(status, 200, "POST /snapshot must answer 200: {body}");
        let (_, metrics) = probe.request("GET", "/metrics", "").expect("metrics");
        assert!(
            metrics.contains("\"persistence\":{"),
            "metrics must expose persistence counters"
        );
    }

    // Cache identity check: the same request issued cold and warm must
    // produce byte-identical response bodies (acceptance criterion).
    let mut probe = HttpClient::connect(addr).expect("probe client connects");
    let (s1, cold) = probe
        .request("POST", "/query", &bodies[0])
        .expect("cold probe");
    let (s2, warm) = probe
        .request("POST", "/query", &bodies[0])
        .expect("warm probe");
    let identical = s1 == 200 && s2 == 200 && cold == warm;
    drop(probe);

    // Flush the warm-up phase: counters accumulated so far belong to the
    // probe, not to the measured window.
    let warmup = engine.cache_stats().expect("engine has a cache");

    // Per-client append bodies: unique ids, locations spread over the
    // extent, attribute values copied from a real object (schema-valid).
    let template = engine.dataset().object(0).values.clone();
    let bbox = engine.dataset().bounding_box().expect("non-empty dataset");
    let fresh_object = |client: usize, seq: usize| -> asrs_data::SpatialObject {
        let id = 10_000_000 + (client as u64) * 100_000 + seq as u64;
        let f = ((client * 131 + seq * 17) % 97) as f64 / 97.0;
        let g = ((client * 29 + seq * 43) % 89) as f64 / 89.0;
        asrs_data::SpatialObject::new(
            id,
            asrs_geo::Point::new(bbox.min_x + bbox.width() * f, bbox.min_y + bbox.height() * g),
            template.clone(),
        )
    };
    let append_bodies_for = |client: usize| -> Vec<String> {
        if append_every == 0 {
            return Vec::new();
        }
        let count = args.requests_per_client / append_every + 1;
        (0..count)
            .map(|j| {
                if batch > 1 {
                    let items: Vec<String> = (0..batch)
                        .map(|b| {
                            let object = fresh_object(client, j * batch + b);
                            format!("{{\"object\":{}}}", serde::json::to_string(&object))
                        })
                        .collect();
                    format!("{{\"items\":[{}]}}", items.join(","))
                } else {
                    format!(
                        "{{\"object\":{}}}",
                        serde::json::to_string(&fresh_object(client, j))
                    )
                }
            })
            .collect()
    };

    // Open-loop schedule: the aggregate rate splits evenly across clients
    // and every client's clock starts at the same instant.
    let open_loop_start = Instant::now();
    let per_client_interval_s = if rate > 0 {
        Some(args.clients as f64 / rate as f64)
    } else {
        None
    };

    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        (0..args.clients)
            .map(|c| {
                let bodies = &bodies;
                let append_bodies = append_bodies_for(c);
                scope.spawn(move || {
                    drive_client(ClientPlan {
                        addr,
                        bodies,
                        offset: c * 3,
                        requests: args.requests_per_client,
                        append_every,
                        append_bodies,
                        append_path: if batch > 1 { "/append_batch" } else { "/append" },
                        append_objects: batch.max(1),
                        schedule: per_client_interval_s.map(|s| (open_loop_start, s)),
                    })
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();
    let final_generation = engine.generation();

    // Read /metrics over the wire (smoke for the endpoint), but take the
    // authoritative numbers from the in-process handle.
    let mut probe = HttpClient::connect(addr).expect("metrics client connects");
    let (metrics_status, metrics_body) = probe.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(metrics_status, 200, "GET /metrics must answer 200");
    if shards > 0 {
        assert!(
            metrics_body.contains("\"shard_count\""),
            "sharded engines must expose per-shard counters: {metrics_body}"
        );
    }
    drop(probe);
    let metrics = server.metrics();
    server.shutdown();

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let http_errors: usize = outcomes.iter().map(|o| o.http_errors).sum();
    let protocol_errors: usize = outcomes.iter().map(|o| o.protocol_errors).sum();
    let cache = metrics.cache.expect("engine has a cache");
    // Steady-state counters: lifetime totals minus the warm-up probe.
    let steady_hits = cache.hits - warmup.hits;
    let steady_misses = cache.misses - warmup.misses;
    let steady_lookups = steady_hits + steady_misses;

    let mutations_applied: usize = outcomes.iter().map(|o| o.mutations_applied).sum();

    BenchReport {
        benchmark: "server_load".to_string(),
        smoke: args.smoke,
        objects: args.objects,
        clients: args.clients,
        requests_per_client: args.requests_per_client,
        cache_capacity: args.cache_capacity,
        shards,
        append_every,
        ingest_batch_size: if append_every > 0 { batch.max(1) } else { 0 },
        open_loop_rate_rps: rate,
        server_workers,
        requests_total: args.clients * args.requests_per_client,
        mutations_applied,
        final_generation,
        http_errors,
        protocol_errors,
        elapsed_ms: elapsed.as_secs_f64() * 1000.0,
        throughput_rps: latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        latency_ms_p50: percentile(&latencies, 0.50),
        latency_ms_p99: percentile(&latencies, 0.99),
        latency_ms_mean: latencies.iter().sum::<u64>() as f64
            / 1000.0
            / latencies.len().max(1) as f64,
        latency_ms_max: latencies.last().copied().unwrap_or(0) as f64 / 1000.0,
        cache_hits: steady_hits,
        cache_misses: steady_misses,
        cache_hit_rate: if steady_lookups == 0 {
            0.0
        } else {
            steady_hits as f64 / steady_lookups as f64
        },
        warmup_cache_hits: warmup.hits,
        warmup_cache_misses: warmup.misses,
        cached_response_byte_identical: identical,
    }
}

fn print_report(report: &BenchReport) {
    let mut label = if report.shards > 0 {
        format!(
            "Serving load, sharded x{} (mixed workload over HTTP/1.1 keep-alive)",
            report.shards
        )
    } else {
        "Serving load (mixed workload over HTTP/1.1 keep-alive)".to_string()
    };
    if report.append_every > 0 {
        if report.ingest_batch_size > 1 {
            label.push_str(&format!(
                " + 1 batch of {} per {} queries (/append_batch)",
                report.ingest_batch_size, report.append_every
            ));
        } else {
            label.push_str(&format!(" + 1 append per {} queries", report.append_every));
        }
    }
    if report.open_loop_rate_rps > 0 {
        label.push_str(&format!(
            " [open loop @ {} req/s]",
            report.open_loop_rate_rps
        ));
    }
    let mut table = Table::new(&label, &["metric", "value"]);
    table.row(vec![
        "requests ok".into(),
        (report.requests_total - report.http_errors - report.protocol_errors).to_string(),
    ]);
    table.row(vec![
        "throughput".into(),
        format!("{:.0} req/s", report.throughput_rps),
    ]);
    table.row(vec![
        "latency p50 / p99".into(),
        format!(
            "{:.2} ms / {:.2} ms",
            report.latency_ms_p50, report.latency_ms_p99
        ),
    ]);
    table.row(vec![
        "cache hit rate (steady state)".into(),
        format!(
            "{:.1}% ({} / {})",
            report.cache_hit_rate * 100.0,
            report.cache_hits,
            report.cache_hits + report.cache_misses
        ),
    ]);
    if report.append_every > 0 {
        table.row(vec![
            "mutations applied / final generation".into(),
            format!("{} / {}", report.mutations_applied, report.final_generation),
        ]);
    }
    table.row(vec![
        "errors (http / protocol)".into(),
        format!("{} / {}", report.http_errors, report.protocol_errors),
    ]);
    table.print();
}

fn check_phase(report: &BenchReport) -> bool {
    let mut ok = true;
    if report.http_errors > 0 || report.protocol_errors > 0 {
        eprintln!("FAIL: the run saw errors (shards {})", report.shards);
        ok = false;
    }
    if !report.cached_response_byte_identical {
        eprintln!(
            "FAIL: cached response differed from the cold computation (shards {})",
            report.shards
        );
        ok = false;
    }
    if report.append_every == 0 && report.cache_hits == 0 {
        // A read-only repeated workload must hit; under churn every
        // mutation moves the engine to a fresh (generation-stamped) key
        // space, so a low hit rate there is expected, not a failure.
        eprintln!(
            "FAIL: a repeated workload must produce cache hits (shards {})",
            report.shards
        );
        ok = false;
    }
    if report.append_every > 0 {
        if report.mutations_applied == 0 {
            eprintln!("FAIL: the mixed phase applied no mutation");
            ok = false;
        }
        // Group commit folds concurrent mutations (and whole /append_batch
        // payloads) into one published generation, so the generation counts
        // *batches*: it must move, and it can never exceed the object count.
        if report.final_generation == 0 {
            eprintln!("FAIL: mutations were applied but the generation never moved");
            ok = false;
        }
        if report.final_generation > report.mutations_applied as u64 {
            eprintln!(
                "FAIL: generation {} > mutations {} (more publishes than objects ingested)",
                report.final_generation, report.mutations_applied
            );
            ok = false;
        }
    }
    ok
}

/// The boot-time row: recover the engine's *current* state — the seed
/// dataset plus every acknowledged mutation — two ways and time both.
///
/// * **Boot from snapshot**: what a `--persist-dir` server does after a
///   restart.  The background compaction pump keeps the latest snapshot
///   current, so boot reads one file, restores dataset columns and index
///   base tables without re-indexing, and replays the (empty) WAL tail.
/// * **Build from scratch**: what a server without persistence must do
///   to reach the same state — re-parse the dataset text file, rebuild
///   the index, then re-apply all `mutations_folded` acknowledged
///   mutations one by one.  There is no other path to the mutated state,
///   and each mutation publishes a full generation (the PR 5 write
///   path), which is exactly the work the snapshot folds in for free.
///
/// Recovery fidelity: the booted engine must match the rebuilt engine
/// **bit for bit** — same generation, identical object vectors, identical
/// index base tables (the suffix table is a pure function of the base) —
/// per shard where applicable.  Up to 100k objects the check additionally
/// replays the full mixed request pool on both engines and compares the
/// responses byte-for-byte (`stats_stripped`); past that scale a single
/// similar-region search runs for minutes on clustered data (the ROADMAP
/// AQP item), so the bit-level state check carries the parity claim.
#[derive(Debug, Serialize)]
struct BootBenchReport {
    benchmark: String,
    smoke: bool,
    objects: usize,
    /// Acknowledged mutations folded into the snapshot, which the
    /// build-from-scratch side must re-apply one generation at a time.
    mutations_folded: u64,
    /// Snapshot file size in bytes.
    snapshot_bytes: u64,
    /// Parse the text dataset + build the engine (index included) +
    /// re-apply the `mutations_folded` mutations.
    rebuild_ms: f64,
    /// Boot from the snapshot (read + restore, no re-indexing, empty WAL
    /// tail).
    boot_from_snapshot_ms: f64,
    /// `rebuild_ms / boot_from_snapshot_ms`.
    speedup: f64,
    /// The restored engine is bit-identical to the rebuilt one (and, at
    /// ≤100k objects, answers the request pool byte-identically).
    boot_byte_identical: bool,
}

/// One recorded live mutation, re-applied verbatim by the rebuild side.
enum RecordedMutation {
    Append(asrs_data::SpatialObject),
    Remove(u64),
}

/// Bit-level equality of two exported engine images: generation, object
/// vectors, and index base tables (whole-dataset and per shard).
fn states_identical(a: &asrs_core::EngineState, b: &asrs_core::EngineState) -> bool {
    fn index_eq(x: Option<&asrs_core::GridIndex>, y: Option<&asrs_core::GridIndex>) -> bool {
        match (x, y) {
            (None, None) => true,
            (Some(x), Some(y)) => {
                x.granularity() == y.granularity()
                    && x.spec().space() == y.spec().space()
                    && x.stats_dim() == y.stats_dim()
                    && x.objects_indexed() == y.objects_indexed()
                    && x.base_table() == y.base_table()
            }
            _ => false,
        }
    }
    a.generation == b.generation
        && *a.dataset == *b.dataset
        && index_eq(a.index.as_deref(), b.index.as_deref())
        && match (&a.shards, &b.shards) {
            (None, None) => true,
            (Some(x), Some(y)) => {
                x.len() == y.len()
                    && x.iter().zip(y).all(|(s, t)| {
                        s.region == t.region
                            && *s.dataset == *t.dataset
                            && index_eq(s.index.as_deref(), t.index.as_deref())
                    })
            }
            _ => false,
        }
}

fn run_boot_bench(args: &Args) -> BootBenchReport {
    let workload = Workload::Tweet;
    let objects = args.boot_objects.unwrap_or(args.objects);
    let mutations: u64 = if args.smoke { 4 } else { 64 };
    eprintln!("boot bench: generating {objects} objects ...");
    let dataset = workload.dataset(objects, 42);
    let schema = dataset.schema().clone();
    let bbox = dataset
        .bounding_box()
        .expect("boot bench dataset is non-empty");

    let scratch = match &args.persist_dir {
        Some(root) => std::path::PathBuf::from(root).join("boot-bench"),
        None => std::env::temp_dir().join(format!("asrs-boot-bench-{}", std::process::id())),
    };
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch directory");
    let text_path = scratch.join("dataset.txt");
    asrs_data::io::save(&dataset, &text_path).expect("dataset saved");

    // Live phase (untimed): a persistent engine seeds its cold snapshot,
    // then serves a stream of acknowledged mutations — appends spread over
    // the extent with an occasional removal, every one fsync'd to the WAL.
    let snap_dir = scratch.join("persist");
    // Scale the grid with the dataset: ~16 objects per cell keeps index
    // pruning effective (a 32×32 grid at 1M objects averages ~1000 objects
    // per cell, which defeats the GI-DS bounds and degrades every
    // verification query to a near-naive scan).
    let side = ((objects as f64).sqrt() / 4.0).clamp(32.0, 256.0) as usize;
    let builder = |ds: asrs_data::Dataset| {
        let aggregator = workload.aggregator(&ds);
        AsrsEngine::builder(ds, aggregator)
            .build_index(side, side)
            .cache_capacity(args.cache_capacity)
    };
    let live = builder(dataset)
        .persist_dir(&snap_dir)
        .build()
        .expect("live engine boots cold");
    let template = live.engine().dataset().object(0).values.clone();
    let mut recorded: Vec<RecordedMutation> = Vec::new();
    eprintln!("boot bench: applying {mutations} acknowledged mutations ...");
    for i in 0..mutations {
        if i % 8 == 7 {
            // Remove the append from two steps ago (always present).
            let id = 900_000_000 + i - 2;
            live.engine().remove(id).expect("live remove");
            recorded.push(RecordedMutation::Remove(id));
        } else {
            let f = (i as f64 + 0.5) / mutations as f64;
            let object = asrs_data::SpatialObject::new(
                900_000_000 + i,
                asrs_geo::Point::new(
                    bbox.min_x + f * (bbox.max_x - bbox.min_x),
                    bbox.min_y + (1.0 - f) * (bbox.max_y - bbox.min_y),
                ),
                template.clone(),
            );
            live.engine().append(object.clone()).expect("live append");
            recorded.push(RecordedMutation::Append(object));
        }
    }
    let generation = live.engine().generation();
    assert_eq!(generation, mutations, "every mutation publishes once");
    // Steady state: the compaction pump folds the tail into a snapshot
    // (here forced explicitly) and truncates the log.
    let snapshot = live.snapshot().expect("checkpoint");
    let snapshot_bytes = snapshot.bytes;
    drop(live); // crash

    // Boot side (timed): restore the snapshot.  The seed dataset is an
    // empty shell (schema only) — a real boot has no objects in hand, and
    // the restore path never reads the seed.
    let empty = asrs_data::Dataset::new_unchecked(schema, Vec::new());
    let started = Instant::now();
    let booted = builder(empty)
        .persist_dir(&snap_dir)
        .build()
        .expect("engine boots from snapshot");
    let boot_ms = started.elapsed().as_secs_f64() * 1000.0;
    let boot = booted.boot();
    assert!(!boot.cold_start, "the checkpoint snapshot must be used");
    assert_eq!(boot.replayed_entries, 0, "the checkpoint compacted the log");
    assert_eq!(booted.engine().generation(), generation);
    eprintln!("boot bench: snapshot boot took {boot_ms:.0} ms, rebuilding from scratch ...");

    // Rebuild side (timed): parse the text file, build the index, re-apply
    // every acknowledged mutation.
    let started = Instant::now();
    let reloaded = asrs_data::io::load(&text_path).expect("dataset loads");
    let rebuilt = builder(reloaded).build().expect("engine rebuilds");
    for mutation in &recorded {
        match mutation {
            RecordedMutation::Append(object) => rebuilt.append(object.clone()),
            RecordedMutation::Remove(id) => rebuilt.remove(*id),
        }
        .expect("replayed mutation");
    }
    let rebuild_ms = started.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(rebuilt.generation(), generation);
    eprintln!("boot bench: rebuild took {rebuild_ms:.0} ms, verifying bit-identity ...");

    // Bit-level identity always; response byte-identity while queries are
    // tractable (see the struct docs).
    let mut boot_byte_identical =
        states_identical(&rebuilt.export_state(), &booted.engine().export_state());
    if boot_byte_identical && objects <= 100_000 {
        let pool = request_pool(workload, &rebuilt);
        boot_byte_identical = pool.iter().all(|request| {
            let a = rebuilt.submit(request).expect("rebuilt engine answers");
            let b = booted
                .engine()
                .submit(request)
                .expect("booted engine answers");
            serde::json::to_string(&a.stats_stripped())
                == serde::json::to_string(&b.stats_stripped())
        });
    }

    if args.persist_dir.is_none() {
        let _ = std::fs::remove_dir_all(&scratch);
    }
    BootBenchReport {
        benchmark: "server_boot".to_string(),
        smoke: args.smoke,
        objects,
        mutations_folded: mutations,
        snapshot_bytes,
        rebuild_ms,
        boot_from_snapshot_ms: boot_ms,
        speedup: rebuild_ms / boot_ms.max(1e-9),
        boot_byte_identical,
    }
}

fn print_boot_report(report: &BootBenchReport) {
    let mut table = Table::new(
        &format!("Boot time at {} objects", report.objects),
        &["metric", "value"],
    );
    table.row(vec![
        format!(
            "rebuild (parse + index + {} mutations)",
            report.mutations_folded
        ),
        format!("{:.0} ms", report.rebuild_ms),
    ]);
    table.row(vec![
        "boot from snapshot".into(),
        format!("{:.0} ms", report.boot_from_snapshot_ms),
    ]);
    table.row(vec!["speedup".into(), format!("{:.1}x", report.speedup)]);
    table.row(vec![
        "snapshot size".into(),
        format!(
            "{:.1} MiB",
            report.snapshot_bytes as f64 / (1024.0 * 1024.0)
        ),
    ]);
    table.row(vec![
        "bit-identical recovery".into(),
        report.boot_byte_identical.to_string(),
    ]);
    table.print();
}

fn check_boot(report: &BootBenchReport) -> bool {
    let mut ok = true;
    if !report.boot_byte_identical {
        eprintln!("FAIL: the booted engine is not bit-identical to the rebuilt engine");
        ok = false;
    }
    // The ≥10x acceptance bar is pinned to the 1M-object row; small smoke
    // datasets boot in microseconds where the ratio is mostly noise.
    if report.objects >= 1_000_000 && report.speedup < 10.0 {
        eprintln!(
            "FAIL: boot from snapshot must beat rebuild by >=10x at 1M objects (got {:.1}x)",
            report.speedup
        );
        ok = false;
    }
    ok
}

fn main() {
    let args = Args::parse();
    let mut reports: Vec<BenchReport> = vec![run_phase(&args, 0, 0, 0, 0)];
    if args.shards > 0 {
        reports.push(run_phase(&args, args.shards, 0, 0, 0));
    }
    if args.append_every > 0 {
        // The mutation rows: same workload, same shard setting as the last
        // read-only phase, with live appends interleaved — once with solo
        // `/append` requests, once with `/append_batch` payloads.
        reports.push(run_phase(&args, args.shards, args.append_every, 1, 0));
        if args.batch > 1 {
            reports.push(run_phase(&args, args.shards, args.append_every, args.batch, 0));
        }
    }
    // The offered-rate sweep: one open-loop row per requested rate.
    for &rate in &args.rates {
        reports.push(run_phase(&args, args.shards, 0, 0, rate));
    }
    let boot = args.boot_bench.then(|| run_boot_bench(&args));

    // The file holds one object for the single-row legacy shape, otherwise
    // an array; the boot row (a different shape) is appended to the array.
    let mut rows: Vec<String> = reports.iter().map(serde::json::to_string).collect();
    if let Some(boot) = &boot {
        rows.push(serde::json::to_string(boot));
    }
    let json = if rows.len() == 1 {
        rows.pop().expect("one row")
    } else {
        format!("[{}]", rows.join(","))
    };
    std::fs::write(&args.out, json).expect("report written");

    let mut ok = true;
    for report in &reports {
        print_report(report);
        ok &= check_phase(report);
    }
    if let Some(boot) = &boot {
        print_boot_report(boot);
        ok &= check_boot(boot);
    }
    if reports.len() >= 2 && reports[1].shards > 0 {
        let (unsharded, sharded) = (&reports[0], &reports[1]);
        println!(
            "sharded x{} vs unsharded throughput: {:.0} vs {:.0} req/s ({:+.1}%)",
            sharded.shards,
            sharded.throughput_rps,
            unsharded.throughput_rps,
            (sharded.throughput_rps / unsharded.throughput_rps.max(1e-9) - 1.0) * 100.0
        );
    }
    println!("report written to {}", args.out);
    if !ok {
        std::process::exit(1);
    }
    println!("OK");
}
