//! Load generator for the `asrs-server` serving layer.
//!
//! Boots an engine plus server in-process, then drives it over real
//! sockets with keep-alive HTTP clients issuing a mixed workload drawn
//! from a fixed request pool (so repeats exercise the query-result cache).
//! Writes `BENCH_server.json` with throughput, latency percentiles and the
//! cache hit rate — the serving-side companion to the paper-figure
//! benchmarks.
//!
//! ```text
//! server_load [--smoke] [--objects N] [--clients C] [--requests R]
//!             [--cache N] [--shards S] [--out PATH]
//! ```
//!
//! Without `--shards` one row is written (a single JSON object, as
//! before).  With `--shards S` the same workload is measured twice — once
//! unsharded, once on an `EngineBuilder::shards(S)` engine — and the file
//! holds a JSON array of the two rows, making the sharding axis directly
//! comparable.
//!
//! Cache metrics are reported per phase: the cache-identity probe that
//! precedes the measured run warms the cache, so the steady-state hit rate
//! is computed from the *delta* of the cache counters across the measured
//! window rather than the lifetime totals (which would let warm-up hits
//! inflate the number).
//!
//! `--smoke` shrinks everything to a boot → one-round-trip → clean-shutdown
//! check suitable for CI.  The process exits non-zero on any protocol
//! error, non-200 response, or a cached response that is not byte-identical
//! to its cold computation.

use asrs_bench::report::Table;
use asrs_bench::workloads::Workload;
use asrs_core::{AsrsEngine, QueryRequest};
use asrs_geo::RegionSize;
use asrs_server::{AsrsServer, HttpClient, ServerConfig};
use serde::Serialize;
use std::net::SocketAddr;
use std::time::Instant;

#[derive(Debug, Clone)]
struct Args {
    smoke: bool,
    objects: usize,
    clients: usize,
    requests_per_client: usize,
    cache_capacity: usize,
    shards: usize,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            smoke: false,
            objects: 20_000,
            clients: 4,
            requests_per_client: 200,
            cache_capacity: 1024,
            shards: 0,
            out: "BENCH_server.json".to_string(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut num = |name: &str| -> usize {
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{name} expects a number"))
            };
            match flag.as_str() {
                "--smoke" => args.smoke = true,
                "--objects" => args.objects = num("--objects"),
                "--clients" => args.clients = num("--clients"),
                "--requests" => args.requests_per_client = num("--requests"),
                "--cache" => args.cache_capacity = num("--cache"),
                "--shards" => args.shards = num("--shards"),
                "--out" => args.out = it.next().expect("--out expects a path"),
                other => panic!("unknown flag {other:?}"),
            }
        }
        if args.smoke {
            args.objects = args.objects.min(2_000);
            args.clients = args.clients.min(2);
            args.requests_per_client = args.requests_per_client.min(20);
        }
        args
    }
}

/// A fixed pool of mixed requests; clients cycle through it, so every
/// request past the first pool lap is a cache hit.
fn request_pool(workload: Workload, engine: &AsrsEngine) -> Vec<QueryRequest> {
    let dataset = engine.dataset();
    let mut pool = Vec::new();
    for k in [10.0, 20.0, 40.0, 80.0] {
        pool.push(QueryRequest::similar(workload.query(dataset, k)));
    }
    pool.push(QueryRequest::top_k(workload.query(dataset, 25.0), 3));
    pool.push(QueryRequest::approximate(
        workload.query(dataset, 30.0),
        0.25,
    ));
    pool.push(QueryRequest::batch(vec![
        workload.query(dataset, 15.0),
        workload.query(dataset, 35.0),
    ]));
    pool.push(QueryRequest::similar(workload.query(dataset, 50.0)).with_budget_ms(120_000));
    let bbox = dataset
        .bounding_box()
        .expect("generated dataset is non-empty");
    pool.push(QueryRequest::max_rs(RegionSize::new(
        bbox.width() / 50.0,
        bbox.height() / 50.0,
    )));
    pool
}

#[derive(Debug, Default)]
struct ClientOutcome {
    latencies_us: Vec<u64>,
    http_errors: usize,
    protocol_errors: usize,
}

fn drive_client(
    addr: SocketAddr,
    bodies: &[String],
    offset: usize,
    requests: usize,
) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    let Ok(mut client) = HttpClient::connect(addr) else {
        outcome.protocol_errors += 1;
        return outcome;
    };
    for i in 0..requests {
        let body = &bodies[(offset + i) % bodies.len()];
        let started = Instant::now();
        match client.request("POST", "/query", body) {
            Ok((200, _)) => outcome
                .latencies_us
                .push(started.elapsed().as_micros() as u64),
            Ok((status, response)) => {
                eprintln!("unexpected status {status}: {response}");
                outcome.http_errors += 1;
            }
            Err(e) => {
                eprintln!("protocol error: {e}");
                outcome.protocol_errors += 1;
                // Reconnect and keep going; a load generator should not
                // stop at the first hiccup.
                match HttpClient::connect(addr) {
                    Ok(fresh) => client = fresh,
                    Err(_) => return outcome,
                }
            }
        }
    }
    outcome
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 * p).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64 / 1000.0
}

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    smoke: bool,
    objects: usize,
    clients: usize,
    requests_per_client: usize,
    cache_capacity: usize,
    shards: usize,
    server_workers: usize,
    requests_total: usize,
    http_errors: usize,
    protocol_errors: usize,
    elapsed_ms: f64,
    throughput_rps: f64,
    latency_ms_p50: f64,
    latency_ms_p99: f64,
    latency_ms_mean: f64,
    latency_ms_max: f64,
    /// Cache counters of the measured (steady-state) window only; the
    /// warm-up probe's hit and misses are reported separately below.
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    warmup_cache_hits: u64,
    warmup_cache_misses: u64,
    cached_response_byte_identical: bool,
}

/// Runs one measured serving phase (build → probe → load → metrics →
/// shutdown) with the given shard count (`0` = classic single engine).
fn run_phase(args: &Args, shards: usize) -> BenchReport {
    let workload = Workload::Tweet;
    eprintln!(
        "building engine: {} objects, cache capacity {}, shards {} ...",
        args.objects, args.cache_capacity, shards
    );
    let dataset = workload.dataset(args.objects, 42);
    let aggregator = workload.aggregator(&dataset);
    let mut builder = AsrsEngine::builder(dataset, aggregator)
        .build_index(32, 32)
        .cache_capacity(args.cache_capacity);
    if shards > 0 {
        builder = builder.shards(shards);
    }
    let engine = builder.build().expect("engine builds");
    let pool = request_pool(workload, &engine);
    let bodies: Vec<String> = pool.iter().map(serde::json::to_string).collect();

    let config = ServerConfig::default();
    let server_workers = config.workers;
    let server = AsrsServer::bind(engine.handle(), "127.0.0.1:0", config)
        .and_then(AsrsServer::start)
        .expect("server starts");
    let addr = server.addr();
    eprintln!("serving on http://{addr}");

    // Cache identity check: the same request issued cold and warm must
    // produce byte-identical response bodies (acceptance criterion).
    let mut probe = HttpClient::connect(addr).expect("probe client connects");
    let (s1, cold) = probe
        .request("POST", "/query", &bodies[0])
        .expect("cold probe");
    let (s2, warm) = probe
        .request("POST", "/query", &bodies[0])
        .expect("warm probe");
    let identical = s1 == 200 && s2 == 200 && cold == warm;
    drop(probe);

    // Flush the warm-up phase: counters accumulated so far belong to the
    // probe, not to the measured window.
    let warmup = engine.cache_stats().expect("engine has a cache");

    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        (0..args.clients)
            .map(|c| {
                let bodies = &bodies;
                scope.spawn(move || drive_client(addr, bodies, c * 3, args.requests_per_client))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    // Read /metrics over the wire (smoke for the endpoint), but take the
    // authoritative numbers from the in-process handle.
    let mut probe = HttpClient::connect(addr).expect("metrics client connects");
    let (metrics_status, metrics_body) = probe.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(metrics_status, 200, "GET /metrics must answer 200");
    if shards > 0 {
        assert!(
            metrics_body.contains("\"shard_count\""),
            "sharded engines must expose per-shard counters: {metrics_body}"
        );
    }
    drop(probe);
    let metrics = server.metrics();
    server.shutdown();

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let http_errors: usize = outcomes.iter().map(|o| o.http_errors).sum();
    let protocol_errors: usize = outcomes.iter().map(|o| o.protocol_errors).sum();
    let cache = metrics.cache.expect("engine has a cache");
    // Steady-state counters: lifetime totals minus the warm-up probe.
    let steady_hits = cache.hits - warmup.hits;
    let steady_misses = cache.misses - warmup.misses;
    let steady_lookups = steady_hits + steady_misses;

    BenchReport {
        benchmark: "server_load".to_string(),
        smoke: args.smoke,
        objects: args.objects,
        clients: args.clients,
        requests_per_client: args.requests_per_client,
        cache_capacity: args.cache_capacity,
        shards,
        server_workers,
        requests_total: args.clients * args.requests_per_client,
        http_errors,
        protocol_errors,
        elapsed_ms: elapsed.as_secs_f64() * 1000.0,
        throughput_rps: latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        latency_ms_p50: percentile(&latencies, 0.50),
        latency_ms_p99: percentile(&latencies, 0.99),
        latency_ms_mean: latencies.iter().sum::<u64>() as f64
            / 1000.0
            / latencies.len().max(1) as f64,
        latency_ms_max: latencies.last().copied().unwrap_or(0) as f64 / 1000.0,
        cache_hits: steady_hits,
        cache_misses: steady_misses,
        cache_hit_rate: if steady_lookups == 0 {
            0.0
        } else {
            steady_hits as f64 / steady_lookups as f64
        },
        warmup_cache_hits: warmup.hits,
        warmup_cache_misses: warmup.misses,
        cached_response_byte_identical: identical,
    }
}

fn print_report(report: &BenchReport) {
    let label = if report.shards > 0 {
        format!(
            "Serving load, sharded x{} (mixed workload over HTTP/1.1 keep-alive)",
            report.shards
        )
    } else {
        "Serving load (mixed workload over HTTP/1.1 keep-alive)".to_string()
    };
    let mut table = Table::new(&label, &["metric", "value"]);
    table.row(vec![
        "requests ok".into(),
        (report.requests_total - report.http_errors - report.protocol_errors).to_string(),
    ]);
    table.row(vec![
        "throughput".into(),
        format!("{:.0} req/s", report.throughput_rps),
    ]);
    table.row(vec![
        "latency p50 / p99".into(),
        format!(
            "{:.2} ms / {:.2} ms",
            report.latency_ms_p50, report.latency_ms_p99
        ),
    ]);
    table.row(vec![
        "cache hit rate (steady state)".into(),
        format!(
            "{:.1}% ({} / {})",
            report.cache_hit_rate * 100.0,
            report.cache_hits,
            report.cache_hits + report.cache_misses
        ),
    ]);
    table.row(vec![
        "errors (http / protocol)".into(),
        format!("{} / {}", report.http_errors, report.protocol_errors),
    ]);
    table.print();
}

fn check_phase(report: &BenchReport) -> bool {
    let mut ok = true;
    if report.http_errors > 0 || report.protocol_errors > 0 {
        eprintln!("FAIL: the run saw errors (shards {})", report.shards);
        ok = false;
    }
    if !report.cached_response_byte_identical {
        eprintln!(
            "FAIL: cached response differed from the cold computation (shards {})",
            report.shards
        );
        ok = false;
    }
    if report.cache_hits == 0 {
        eprintln!(
            "FAIL: a repeated workload must produce cache hits (shards {})",
            report.shards
        );
        ok = false;
    }
    ok
}

fn main() {
    let args = Args::parse();
    let reports: Vec<BenchReport> = if args.shards > 0 {
        vec![run_phase(&args, 0), run_phase(&args, args.shards)]
    } else {
        vec![run_phase(&args, 0)]
    };

    let json = if reports.len() == 1 {
        serde::json::to_string(&reports[0])
    } else {
        serde::json::to_string(&reports)
    };
    std::fs::write(&args.out, json).expect("report written");

    let mut ok = true;
    for report in &reports {
        print_report(report);
        ok &= check_phase(report);
    }
    if reports.len() == 2 {
        let (unsharded, sharded) = (&reports[0], &reports[1]);
        println!(
            "sharded x{} vs unsharded throughput: {:.0} vs {:.0} req/s ({:+.1}%)",
            sharded.shards,
            sharded.throughput_rps,
            unsharded.throughput_rps,
            (sharded.throughput_rps / unsharded.throughput_rps.max(1e-9) - 1.0) * 100.0
        );
    }
    println!("report written to {}", args.out);
    if !ok {
        std::process::exit(1);
    }
    println!("OK");
}
