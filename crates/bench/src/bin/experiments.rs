//! Text-mode experiment runner: regenerates every table and figure of the
//! paper's evaluation (Section 7) as plain-text tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p asrs-bench --bin experiments -- [--all] [--fig8] [--fig9]
//!     [--fig10] [--fig11] [--table1] [--fig12] [--table2] [--fig13] [--scale <f>]
//! ```
//!
//! With no flags, every experiment runs at its default (laptop-friendly)
//! cardinality.  `--scale` multiplies every cardinality, so the sweeps can
//! be pushed towards the paper's sizes on bigger machines.
//!
//! Every measured search goes through `AsrsEngine::submit`; where a figure
//! compares specific backends, the request pins one with
//! `QueryRequest::with_backend` — the API's escape hatch from the cost
//! model.  The sweep-line baseline plugs in as an external backend via
//! `search_with`.

use asrs_baseline::{OptimalEnclosure, SweepBase};
use asrs_bench::{format_duration, unit_query_size, Table, Workload};
use asrs_core::{AsrsEngine, Backend, GridIndex, QueryRequest, SearchConfig};
use std::time::Instant;

struct Options {
    scale: f64,
    run: Vec<String>,
}

fn parse_args() -> Options {
    let mut scale = 1.0;
    let mut run = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a numeric argument");
            }
            "--all" => run.push("all".to_string()),
            flag if flag.starts_with("--") => run.push(flag.trim_start_matches("--").to_string()),
            other => panic!("unknown argument: {other}"),
        }
    }
    Options { scale, run }
}

fn enabled(opts: &Options, name: &str) -> bool {
    opts.run.is_empty() || opts.run.iter().any(|r| r == "all") || opts.run.iter().any(|r| r == name)
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(100)
}

/// Figure 8: runtime vs query rectangle size, DS-Search vs Base.
fn fig8(scale: f64) {
    for workload in [Workload::Tweet, Workload::PoiSyn] {
        let n = scaled(20_000, scale);
        let base_n = scaled(5_000, scale);
        let dataset = workload.dataset(n, 42);
        let base_dataset = workload.dataset(base_n, 42);
        let aggregator = workload.aggregator(&dataset);
        let base_aggregator = workload.aggregator(&base_dataset);
        let engine = AsrsEngine::builder(dataset.clone(), aggregator)
            .build()
            .expect("valid configuration");
        let base_engine = AsrsEngine::builder(base_dataset.clone(), base_aggregator)
            .build()
            .expect("valid configuration");
        let (base_ds, base_agg) = (base_engine.dataset(), base_engine.aggregator());
        let sweep = SweepBase::new(&base_ds, &base_agg);
        let mut table = Table::new(
            &format!(
                "Figure 8 ({}): runtime vs query rectangle size (DS-Search at n={n}, Base at n={base_n})",
                workload.name()
            ),
            &["query size", "DS-Search", "Base (sweep line)"],
        );
        for k in [1.0, 4.0, 7.0, 10.0] {
            let query = workload.query(&dataset, k);
            let request = QueryRequest::similar(query).with_backend(Backend::DsSearch);
            let started = Instant::now();
            engine.submit(&request).unwrap();
            let ds_time = started.elapsed();
            let base_query = workload.query(&base_dataset, k);
            let started = Instant::now();
            base_engine.search_with(&sweep, &base_query).unwrap();
            let base_time = started.elapsed();
            table.row(vec![
                format!("{}q", k as u64),
                format_duration(ds_time),
                format_duration(base_time),
            ]);
        }
        table.print();
    }
}

/// Figure 9: DS-Search runtime vs n_col = n_row.
fn fig9(scale: f64) {
    for workload in [Workload::Tweet, Workload::PoiSyn] {
        let n = scaled(20_000, scale);
        let dataset = workload.dataset(n, 7);
        let aggregator = workload.aggregator(&dataset);
        let mut table = Table::new(
            &format!(
                "Figure 9 ({}): DS-Search runtime vs grid granularity (n={n})",
                workload.name()
            ),
            &["n_col = n_row", "q", "4q", "7q", "10q"],
        );
        for granularity in [10usize, 20, 30, 40, 50] {
            let config = SearchConfig::new()
                .with_grid(granularity, granularity)
                .unwrap();
            let engine = AsrsEngine::builder(dataset.clone(), aggregator.clone())
                .config(config)
                .build()
                .expect("valid configuration");
            let mut cells = vec![granularity.to_string()];
            for k in [1.0, 4.0, 7.0, 10.0] {
                let query = workload.query(&dataset, k);
                let request = QueryRequest::similar(query).with_backend(Backend::DsSearch);
                let started = Instant::now();
                engine.submit(&request).unwrap();
                cells.push(format_duration(started.elapsed()));
            }
            table.row(cells);
        }
        table.print();
    }
}

/// Figure 10: scalability of DS-Search vs Base (query size 10q).
fn fig10(scale: f64) {
    for workload in [Workload::Tweet, Workload::PoiSyn] {
        let mut table = Table::new(
            &format!(
                "Figure 10 ({}): runtime vs number of objects (query size 10q)",
                workload.name()
            ),
            &["objects", "DS-Search", "Base (sweep line)"],
        );
        for base_n in [1_000usize, 4_000, 7_000, 10_000] {
            let n = scaled(base_n, scale);
            let dataset = workload.dataset(n, 11);
            let aggregator = workload.aggregator(&dataset);
            let engine = AsrsEngine::builder(dataset.clone(), aggregator)
                .build()
                .expect("valid configuration");
            let query = workload.query(&dataset, 10.0);
            let request = QueryRequest::similar(query.clone()).with_backend(Backend::DsSearch);
            let started = Instant::now();
            engine.submit(&request).unwrap();
            let ds_time = started.elapsed();
            let (sweep_ds, sweep_agg) = (engine.dataset(), engine.aggregator());
            let sweep = SweepBase::new(&sweep_ds, &sweep_agg);
            let started = Instant::now();
            engine.search_with(&sweep, &query).unwrap();
            let base_time = started.elapsed();
            table.row(vec![
                n.to_string(),
                format_duration(ds_time),
                format_duration(base_time),
            ]);
        }
        table.print();
    }
}

/// Figure 11 + Table 1: GI-DS vs DS-Search across index granularities,
/// plus the fraction of index cells searched and the index sizes.
fn fig11_table1(scale: f64) {
    for workload in [Workload::Tweet, Workload::PoiSyn] {
        let n = scaled(100_000, scale);
        let dataset = workload.dataset(n, 3);
        let aggregator = workload.aggregator(&dataset);
        let plain_engine = AsrsEngine::builder(dataset.clone(), aggregator.clone())
            .build()
            .expect("valid configuration");
        let mut runtime_table = Table::new(
            &format!(
                "Figure 11 ({}): runtime vs grid-index granularity (n={n})",
                workload.name()
            ),
            &[
                "query size",
                "DS-Search",
                "64-GI-DS",
                "128-GI-DS",
                "256-GI-DS",
            ],
        );
        let mut ratio_table = Table::new(
            &format!(
                "Table 1 ({}): ratio of index cells searched and index size (n={n})",
                workload.name()
            ),
            &["granularity", "q", "4q", "7q", "10q", "index size"],
        );
        // One engine per index granularity, each forcing GI-DS so the
        // sweep measures the index, not the planner's choice.
        let engines: Vec<(usize, AsrsEngine)> = [64usize, 128, 256]
            .iter()
            .map(|&g| {
                let index =
                    GridIndex::build(&dataset, &aggregator, g, g).expect("non-empty dataset");
                let engine = AsrsEngine::builder(dataset.clone(), aggregator.clone())
                    .index(index)
                    .build()
                    .expect("matching index");
                (g, engine)
            })
            .collect();
        let mut ratios: Vec<Vec<String>> = engines
            .iter()
            .map(|(g, engine)| {
                let index = engine.index().expect("index attached");
                vec![
                    format!("{g}x{g}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    format!("{:.1} MB", index.memory_bytes() as f64 / (1024.0 * 1024.0)),
                ]
            })
            .collect();
        for (ki, k) in [1.0, 4.0, 7.0, 10.0].iter().enumerate() {
            let query = workload.query(&dataset, *k);
            let started = Instant::now();
            plain_engine
                .submit(&QueryRequest::similar(query.clone()).with_backend(Backend::DsSearch))
                .unwrap();
            let mut row = vec![
                format!("{}q", *k as u64),
                format_duration(started.elapsed()),
            ];
            for (ii, (_, engine)) in engines.iter().enumerate() {
                let request = QueryRequest::similar(query.clone()).with_backend(Backend::GiDs);
                let started = Instant::now();
                let response = engine.submit(&request).unwrap();
                row.push(format_duration(started.elapsed()));
                let ratio = response.stats.index_search_ratio().unwrap_or(0.0);
                ratios[ii][ki + 1] = format!("{:.1}%", ratio * 100.0);
            }
            runtime_table.row(row);
        }
        for row in ratios {
            ratio_table.row(row);
        }
        runtime_table.print();
        ratio_table.print();
    }
}

/// Figure 12 + Table 2: the approximate solution — runtime vs δ and
/// cardinality, and the approximation quality d_app / d_opt.
fn fig12_table2(scale: f64) {
    for workload in [Workload::Tweet, Workload::PoiSyn] {
        let mut runtime_table = Table::new(
            &format!(
                "Figure 12 ({}): runtime of the approximate solution vs delta",
                workload.name()
            ),
            &[
                "objects",
                "delta=0.1",
                "delta=0.2",
                "delta=0.3",
                "delta=0.4",
            ],
        );
        let mut quality_table = Table::new(
            &format!(
                "Table 2 ({}): approximation quality d_app / d_opt",
                workload.name()
            ),
            &[
                "objects",
                "delta=0.1",
                "delta=0.2",
                "delta=0.3",
                "delta=0.4",
            ],
        );
        for base_n in [50_000usize, 100_000, 150_000] {
            let n = scaled(base_n, scale);
            let dataset = workload.dataset(n, 5);
            let aggregator = workload.aggregator(&dataset);
            let engine = AsrsEngine::builder(dataset.clone(), aggregator)
                .build_index(128, 128)
                .build()
                .expect("non-empty dataset");
            let query = workload.query(&dataset, 10.0);
            let exact = engine
                .submit(&QueryRequest::similar(query.clone()).with_backend(Backend::GiDs))
                .unwrap();
            let exact_distance = exact.best().expect("best region").distance;
            let mut runtime_row = vec![n.to_string()];
            let mut quality_row = vec![n.to_string()];
            for delta in [0.1, 0.2, 0.3, 0.4] {
                let request =
                    QueryRequest::approximate(query.clone(), delta).with_backend(Backend::GiDs);
                let started = Instant::now();
                let approx = engine.submit(&request).unwrap();
                runtime_row.push(format_duration(started.elapsed()));
                let approx_distance = approx.best().expect("best region").distance;
                let quality = if exact_distance > 0.0 {
                    approx_distance / exact_distance
                } else {
                    1.0
                };
                quality_row.push(format!("{quality:.5}"));
            }
            runtime_table.row(runtime_row);
            quality_table.row(quality_row);
        }
        runtime_table.print();
        quality_table.print();
    }
}

/// Figure 13: MaxRS — DS-Search adaptation vs Optimal Enclosure.
fn fig13(scale: f64) {
    let count_engine = |dataset: &asrs_data::Dataset| {
        let aggregator = asrs_aggregator::CompositeAggregator::builder(dataset.schema())
            .count(asrs_aggregator::Selection::All)
            .build()
            .expect("count works on every schema");
        AsrsEngine::builder(dataset.clone(), aggregator)
            .build()
            .expect("valid configuration")
    };
    let n = scaled(100_000, scale);
    let dataset = asrs_bench::tweet_dataset(n, 17);
    let engine = count_engine(&dataset);
    let unit = unit_query_size(&dataset);
    let mut size_table = Table::new(
        &format!("Figure 13a: MaxRS runtime vs query rectangle size (n={n})"),
        &["query size", "DS-Search", "OE"],
    );
    for k in [1.0, 10.0, 20.0, 30.0] {
        let size = unit.scaled(k);
        let started = Instant::now();
        let ds = engine.submit(&QueryRequest::max_rs(size)).unwrap();
        let ds_time = started.elapsed();
        let started = Instant::now();
        let oe = OptimalEnclosure::new(&dataset, size).search().unwrap();
        let oe_time = started.elapsed();
        let ds_count = ds.max_rs().expect("max-rs outcome").count;
        assert_eq!(ds_count, oe.count, "both MaxRS solvers must agree");
        size_table.row(vec![
            format!("{}q", k as u64),
            format_duration(ds_time),
            format_duration(oe_time),
        ]);
    }
    size_table.print();

    let mut scale_table = Table::new(
        "Figure 13b: MaxRS runtime vs number of objects (query size 10q)",
        &["objects", "DS-Search", "OE"],
    );
    for base_n in [25_000usize, 50_000, 100_000, 200_000] {
        let n = scaled(base_n, scale);
        let dataset = asrs_bench::tweet_dataset(n, 29);
        let engine = count_engine(&dataset);
        let size = unit_query_size(&dataset).scaled(10.0);
        let started = Instant::now();
        let ds = engine.submit(&QueryRequest::max_rs(size)).unwrap();
        let ds_time = started.elapsed();
        let started = Instant::now();
        let oe = OptimalEnclosure::new(&dataset, size).search().unwrap();
        let oe_time = started.elapsed();
        assert_eq!(ds.max_rs().expect("max-rs outcome").count, oe.count);
        scale_table.row(vec![
            n.to_string(),
            format_duration(ds_time),
            format_duration(oe_time),
        ]);
    }
    scale_table.print();
}

fn main() {
    let opts = parse_args();
    println!(
        "# ASRS experiment runner (scale factor {:.2})\n",
        opts.scale
    );
    if enabled(&opts, "fig8") {
        fig8(opts.scale);
    }
    if enabled(&opts, "fig9") {
        fig9(opts.scale);
    }
    if enabled(&opts, "fig10") {
        fig10(opts.scale);
    }
    if enabled(&opts, "fig11") || enabled(&opts, "table1") {
        fig11_table1(opts.scale);
    }
    if enabled(&opts, "fig12") || enabled(&opts, "table2") {
        fig12_table2(opts.scale);
    }
    if enabled(&opts, "fig13") {
        fig13(opts.scale);
    }
    println!("done.");
}
