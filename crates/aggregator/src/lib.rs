//! Composite aggregators, feature vectors and distance machinery for the
//! ASRS reproduction (Section 3.2 / 3.3 of the paper).
//!
//! A *composite aggregator* `F = ((f_1, A_1, γ_1), …, (f_k, A_k, γ_k))`
//! turns the set of spatial objects inside a region into a fixed-length
//! *aggregate representation* (feature vector).  The ASRS problem then
//! minimises a weighted L1 distance between the representation of a
//! candidate region and that of the query region.
//!
//! The crate provides:
//!
//! * [`Selection`] — the selection functions γ (all objects, objects with a
//!   given categorical value, objects whose numeric attribute falls in a
//!   range).
//! * [`AggregatorKind`] — the aggregators `f_D` (distribution), `f_A`
//!   (average), `f_S` (sum) from the paper plus a `count` aggregator used by
//!   the MaxRS adaptation.
//! * [`CompositeAggregator`] — the composite aggregator, resolved against a
//!   dataset [`Schema`].  It also defines the *statistics layout*: an
//!   additive vector representation of partially aggregated data that makes
//!   the aggregator compatible with difference-array discretisation
//!   (Section 4.3) and with the grid index's attribute summary tables
//!   (Section 5.2).
//! * [`FeatureVector`], [`Weights`], [`DistanceMetric`] and the Equation-1
//!   distance lower bound used to prune dirty cells.
//!
//! [`Schema`]: asrs_data::Schema

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod composite;
mod distance;
mod feature;
mod kahan;
mod kind;
mod selection;

pub use composite::{AggregatorError, AggregatorSpec, CompositeAggregator, CompositeBuilder};
pub use distance::{distance_lower_bound, weighted_distance, DistanceMetric};
pub use feature::{FeatureVector, Weights};
pub use kahan::{neumaier_add, CompensatedSum, StatsAccumulator};
pub use kind::AggregatorKind;
pub use selection::Selection;
