//! Weighted distances between aggregate representations and the Equation-1
//! distance lower bound used to prune dirty cells.

use serde::{Deserialize, Serialize};

/// The distance metric applied to (weighted) feature-vector differences.
///
/// The paper presents the weighted L1 distance and notes that other metrics
/// such as L2 are straightforward substitutes; both are provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceMetric {
    /// Weighted Manhattan distance `Σ w_i · |a_i − b_i|` (the paper's
    /// default, Definition 4).
    #[default]
    L1,
    /// Weighted Euclidean distance `sqrt(Σ w_i · (a_i − b_i)²)`.
    L2,
}

/// Computes the weighted distance between two representations.
///
/// # Panics
///
/// Panics when the three slices do not share the same length.
pub fn weighted_distance(a: &[f64], b: &[f64], weights: &[f64], metric: DistanceMetric) -> f64 {
    assert_eq!(a.len(), b.len(), "representation dimensionality mismatch");
    assert_eq!(a.len(), weights.len(), "weight dimensionality mismatch");
    match metric {
        DistanceMetric::L1 => a
            .iter()
            .zip(b)
            .zip(weights)
            .map(|((x, y), w)| w * (x - y).abs())
            .sum(),
        DistanceMetric::L2 => a
            .iter()
            .zip(b)
            .zip(weights)
            .map(|((x, y), w)| w * (x - y) * (x - y))
            .sum::<f64>()
            .sqrt(),
    }
}

/// The Equation-1 lower bound: the smallest weighted distance any
/// representation `v` with `lower[i] ≤ v[i] ≤ upper[i]` can have to the
/// query representation.
///
/// For each dimension the closest admissible value to the query is used
/// (clamping the query into `[lower_i, upper_i]`), which generalises the
/// paper's per-dimension case analysis and works for both metrics.
///
/// # Panics
///
/// Panics when the slices do not share the same length.
pub fn distance_lower_bound(
    query: &[f64],
    lower: &[f64],
    upper: &[f64],
    weights: &[f64],
    metric: DistanceMetric,
) -> f64 {
    assert_eq!(
        query.len(),
        lower.len(),
        "lower bound dimensionality mismatch"
    );
    assert_eq!(
        query.len(),
        upper.len(),
        "upper bound dimensionality mismatch"
    );
    assert_eq!(query.len(), weights.len(), "weight dimensionality mismatch");
    match metric {
        DistanceMetric::L1 => query
            .iter()
            .zip(lower.iter().zip(upper))
            .zip(weights)
            .map(|((q, (lo, hi)), w)| {
                if q > hi {
                    w * (q - hi)
                } else if q < lo {
                    w * (lo - q)
                } else {
                    0.0
                }
            })
            .sum(),
        DistanceMetric::L2 => query
            .iter()
            .zip(lower.iter().zip(upper))
            .zip(weights)
            .map(|((q, (lo, hi)), w)| {
                let gap = if q > hi {
                    q - hi
                } else if q < lo {
                    lo - q
                } else {
                    0.0
                };
                w * gap * gap
            })
            .sum::<f64>()
            .sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_distance_matches_paper_example_4() {
        // F(r_q) = (2,1,1,1,1.75), F(r_1) = (3,1,1,1,1.6), w = 1 ⇒ 1.15.
        let rq = [2.0, 1.0, 1.0, 1.0, 1.75];
        let r1 = [3.0, 1.0, 1.0, 1.0, 1.6];
        let r2 = [2.0, 0.0, 2.0, 0.0, 2.9];
        let w = [1.0; 5];
        let d1 = weighted_distance(&rq, &r1, &w, DistanceMetric::L1);
        let d2 = weighted_distance(&rq, &r2, &w, DistanceMetric::L1);
        assert!((d1 - 1.15).abs() < 1e-9);
        assert!((d2 - 4.15).abs() < 1e-9);
        assert!(d1 < d2);
    }

    #[test]
    fn weights_scale_dimensions() {
        let a = [1.0, 1.0];
        let b = [0.0, 0.0];
        let w = [2.0, 0.5];
        assert_eq!(weighted_distance(&a, &b, &w, DistanceMetric::L1), 2.5);
    }

    #[test]
    fn l2_distance_is_euclidean_when_weights_are_one() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        let w = [1.0, 1.0];
        assert!((weighted_distance(&a, &b, &w, DistanceMetric::L2) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = [1.5, -2.0, 7.0];
        let w = [1.0, 2.0, 3.0];
        assert_eq!(weighted_distance(&a, &a, &w, DistanceMetric::L1), 0.0);
        assert_eq!(weighted_distance(&a, &a, &w, DistanceMetric::L2), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn mismatched_lengths_panic() {
        weighted_distance(&[1.0], &[1.0, 2.0], &[1.0, 1.0], DistanceMetric::L1);
    }

    #[test]
    fn lower_bound_matches_paper_example_7() {
        // Query representation (1, 1), weight (1, 1).
        let q = [1.0, 1.0];
        let w = [1.0, 1.0];
        // Cell g_{2,1}: v̄ = (2, 0), v̲ = (0, 0) ⇒ lb = 0 + 1 = 1.
        let lb = distance_lower_bound(&q, &[0.0, 0.0], &[2.0, 0.0], &w, DistanceMetric::L1);
        assert_eq!(lb, 1.0);
        // Cell g_{5,1}: v̄ = (2, 1), v̲ = (0, 1) ⇒ lb = 0.
        let lb = distance_lower_bound(&q, &[0.0, 1.0], &[2.0, 1.0], &w, DistanceMetric::L1);
        assert_eq!(lb, 0.0);
    }

    #[test]
    fn lower_bound_never_exceeds_actual_distance() {
        // Any v with lower ≤ v ≤ upper must have distance ≥ lb.
        let q = [3.0, -1.0, 0.5];
        let lower = [0.0, -2.0, 0.0];
        let upper = [2.0, 4.0, 1.0];
        let w = [1.0, 0.5, 2.0];
        for metric in [DistanceMetric::L1, DistanceMetric::L2] {
            let lb = distance_lower_bound(&q, &lower, &upper, &w, metric);
            // Sample a few admissible vectors, including the corners.
            let candidates = [
                [0.0, -2.0, 0.0],
                [2.0, 4.0, 1.0],
                [1.0, 0.0, 0.5],
                [2.0, -2.0, 1.0],
            ];
            for v in candidates {
                assert!(
                    weighted_distance(&q, &v, &w, metric) + 1e-12 >= lb,
                    "lb {lb} must not exceed distance for {v:?} under {metric:?}"
                );
            }
        }
    }

    #[test]
    fn lower_bound_is_zero_when_query_is_inside_the_box() {
        let q = [1.0, 2.0];
        let lb = distance_lower_bound(
            &q,
            &[0.0, 0.0],
            &[5.0, 5.0],
            &[1.0, 1.0],
            DistanceMetric::L1,
        );
        assert_eq!(lb, 0.0);
    }

    #[test]
    fn lower_bound_is_exact_when_bounds_collapse() {
        let q = [1.0, 2.0];
        let v = [4.0, 0.0];
        let w = [1.0, 3.0];
        for metric in [DistanceMetric::L1, DistanceMetric::L2] {
            let lb = distance_lower_bound(&q, &v, &v, &w, metric);
            let d = weighted_distance(&q, &v, &w, metric);
            assert!((lb - d).abs() < 1e-12);
        }
    }
}
