//! The individual aggregators `f_D`, `f_A`, `f_S` (Section 3.2) plus a
//! count aggregator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a single aggregator within a composite aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregatorKind {
    /// `f_D`: the distribution of selected objects over the domain of a
    /// categorical attribute.  Produces `|dom(A)|` feature dimensions.
    Distribution {
        /// Index of the categorical attribute.
        attr: usize,
    },
    /// `f_A`: the average of a numeric attribute over the selected objects
    /// (0 when no object is selected).  Produces one feature dimension.
    Average {
        /// Index of the numeric attribute.
        attr: usize,
    },
    /// `f_S`: the sum of a numeric attribute over the selected objects.
    /// Produces one feature dimension.
    Sum {
        /// Index of the numeric attribute.
        attr: usize,
    },
    /// The number of selected objects.  Not one of the paper's three named
    /// aggregators but expressible in its framework (a sum of the constant
    /// 1); it is the scoring function of the MaxRS special case
    /// (Section 7.5).
    Count,
}

impl AggregatorKind {
    /// The attribute the aggregator reads, if any.
    pub fn attr(&self) -> Option<usize> {
        match self {
            AggregatorKind::Distribution { attr }
            | AggregatorKind::Average { attr }
            | AggregatorKind::Sum { attr } => Some(*attr),
            AggregatorKind::Count => None,
        }
    }

    /// Short human-readable name of the aggregator.
    pub fn name(&self) -> &'static str {
        match self {
            AggregatorKind::Distribution { .. } => "distribution",
            AggregatorKind::Average { .. } => "average",
            AggregatorKind::Sum { .. } => "sum",
            AggregatorKind::Count => "count",
        }
    }
}

impl fmt::Display for AggregatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.attr() {
            Some(a) => write!(f, "{}(attr{})", self.name(), a),
            None => write!(f, "{}()", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_accessor() {
        assert_eq!(AggregatorKind::Distribution { attr: 2 }.attr(), Some(2));
        assert_eq!(AggregatorKind::Average { attr: 0 }.attr(), Some(0));
        assert_eq!(AggregatorKind::Sum { attr: 1 }.attr(), Some(1));
        assert_eq!(AggregatorKind::Count.attr(), None);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(AggregatorKind::Count.name(), "count");
        assert_eq!(
            format!("{}", AggregatorKind::Distribution { attr: 3 }),
            "distribution(attr3)"
        );
        assert_eq!(format!("{}", AggregatorKind::Count), "count()");
    }
}
