//! Compensated (Kahan–Neumaier) summation for float statistics.
//!
//! Statistics vectors sum floating-point attribute values (the `sum` and
//! `average` aggregators), and plain `+=` accumulation loses low-order bits
//! whenever magnitudes differ — worse, the *order* of additions changes
//! which bits are lost, so two executions summing the same multiset along
//! different orders (a sharded scatter vs. the unsharded pass, a mutated
//! engine vs. a fresh rebuild) can disagree in the last ulps.  Compensated
//! summation carries the rounding error of every addition in a second
//! float and folds it back at the end, which keeps the result at (or
//! within one ulp of) the correctly rounded sum for any realistic
//! conditioning — and the correctly rounded sum is order-independent by
//! definition.
//!
//! The implementation is Neumaier's variant of Kahan's algorithm: unlike
//! classic Kahan it stays accurate when an addend exceeds the running sum
//! in magnitude (the first large value after many small ones).

/// Adds `v` to the running `(sum, compensation)` pair in place.
///
/// The true running total is `sum + compensation`; callers fold the
/// compensation in once, at the end, via [`CompensatedSum::value`] or
/// [`StatsAccumulator::finish`].
#[inline]
pub fn neumaier_add(sum: &mut f64, compensation: &mut f64, v: f64) {
    let t = *sum + v;
    if sum.abs() >= v.abs() {
        *compensation += (*sum - t) + v;
    } else {
        *compensation += (v - t) + *sum;
    }
    *sum = t;
}

/// A single compensated accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    /// A zero-valued accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` with compensation.
    #[inline]
    pub fn add(&mut self, v: f64) {
        neumaier_add(&mut self.sum, &mut self.compensation, v);
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// A compensated statistics vector: one `(sum, compensation)` pair per
/// statistics slot, sized for a
/// [`CompositeAggregator`](crate::CompositeAggregator)'s layout.
///
/// Use [`CompositeAggregator::accumulate_object_into`](crate::CompositeAggregator::accumulate_object_into)
/// to add objects and [`StatsAccumulator::finish`] to materialise the
/// statistics vector.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsAccumulator {
    sums: Vec<f64>,
    compensations: Vec<f64>,
}

impl StatsAccumulator {
    /// A zeroed accumulator with `dim` slots.
    pub fn new(dim: usize) -> Self {
        Self {
            sums: vec![0.0; dim],
            compensations: vec![0.0; dim],
        }
    }

    /// Number of slots.
    pub fn dim(&self) -> usize {
        self.sums.len()
    }

    /// Adds `v` to slot `k` with compensation.
    #[inline]
    pub fn add(&mut self, k: usize, v: f64) {
        neumaier_add(&mut self.sums[k], &mut self.compensations[k], v);
    }

    /// Adds a whole contribution vector slot-wise (zero entries skipped).
    pub fn add_slice(&mut self, contrib: &[f64]) {
        debug_assert_eq!(contrib.len(), self.sums.len());
        for (k, v) in contrib.iter().enumerate() {
            if *v != 0.0 {
                self.add(k, *v);
            }
        }
    }

    /// Resets every slot to zero without reallocating.
    pub fn reset(&mut self) {
        self.sums.iter_mut().for_each(|v| *v = 0.0);
        self.compensations.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Copies the state of `other` into `self` (dimensions must match).
    pub fn clone_from_accumulator(&mut self, other: &StatsAccumulator) {
        self.sums.copy_from_slice(&other.sums);
        self.compensations.copy_from_slice(&other.compensations);
    }

    /// Materialises the compensated statistics vector into `out`.
    pub fn finish_into(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.sums.len());
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.sums[k] + self.compensations[k];
        }
    }

    /// Materialises the compensated statistics vector.
    pub fn finish(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.sums.len()];
        self.finish_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neumaier_recovers_bits_plain_summation_loses() {
        // 1e16 + 1.0 + 1.0 - 1e16: plain f64 summation in this order
        // returns 0 or 2 depending on luck; the compensated sum is exact.
        let values = [1e16, 1.0, 1.0, -1e16];
        let plain: f64 = values.iter().sum();
        let mut comp = CompensatedSum::new();
        for v in values {
            comp.add(v);
        }
        assert_eq!(comp.value(), 2.0);
        assert_ne!(plain, 2.0, "plain summation must actually lose the bits");
    }

    #[test]
    fn compensated_sums_are_order_independent_on_adversarial_magnitudes() {
        // The same multiset summed along many different orders must land on
        // the same bits — the property the sharded/unsharded and
        // mutated/rebuilt parity of float-sum aggregates rests on.
        let mut values = vec![1e16, -1e16, 3.25, 1e8, -1e8, 0.125, 7.5, -2.25, 1e12, -1e12];
        let reference = {
            let mut c = CompensatedSum::new();
            values.iter().for_each(|&v| c.add(v));
            c.value()
        };
        // Deterministic permutation sweep (rotate + reverse + interleave).
        for rot in 0..values.len() {
            values.rotate_left(1);
            let mut c = CompensatedSum::new();
            values.iter().for_each(|&v| c.add(v));
            assert_eq!(c.value().to_bits(), reference.to_bits(), "rotation {rot}");
            let mut c = CompensatedSum::new();
            values.iter().rev().for_each(|&v| c.add(v));
            assert_eq!(c.value().to_bits(), reference.to_bits(), "reversed {rot}");
        }
        assert_eq!(reference, 8.625);
    }

    #[test]
    fn accumulator_tracks_slots_independently() {
        let mut acc = StatsAccumulator::new(2);
        acc.add_slice(&[1e16, 1.0]);
        acc.add_slice(&[1.0, 0.0]);
        acc.add_slice(&[-1e16, 2.0]);
        assert_eq!(acc.finish(), vec![1.0, 3.0]);
        assert_eq!(acc.dim(), 2);
        acc.reset();
        assert_eq!(acc.finish(), vec![0.0, 0.0]);
    }
}
