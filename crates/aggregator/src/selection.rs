//! Selection functions γ (Definition 1 of the paper).

use asrs_data::SpatialObject;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A selection function: decides which objects of a region contribute to an
/// aggregator.
///
/// The paper's examples use γ_all (all objects) and γ_apt (objects whose
/// category is "Apartment"); the enum covers those plus numeric-range
/// selections, which are handy for queries such as "apartments below a
/// price threshold".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Selection {
    /// Selects every object (γ_all).
    #[default]
    All,
    /// Selects objects whose categorical attribute `attr` equals `value`.
    CatEquals {
        /// Attribute index in the schema.
        attr: usize,
        /// Required categorical value.
        value: u32,
    },
    /// Selects objects whose categorical attribute `attr` is one of
    /// `values`.
    CatIn {
        /// Attribute index in the schema.
        attr: usize,
        /// Accepted categorical values.
        values: Vec<u32>,
    },
    /// Selects objects whose numeric attribute `attr` lies in
    /// `[min, max]` (inclusive).
    NumRange {
        /// Attribute index in the schema.
        attr: usize,
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
}

impl Selection {
    /// Convenience constructor for [`Selection::CatEquals`].
    pub fn cat_equals(attr: usize, value: u32) -> Self {
        Selection::CatEquals { attr, value }
    }

    /// Convenience constructor for [`Selection::CatIn`].
    pub fn cat_in(attr: usize, values: Vec<u32>) -> Self {
        Selection::CatIn { attr, values }
    }

    /// Convenience constructor for [`Selection::NumRange`].
    pub fn num_range(attr: usize, min: f64, max: f64) -> Self {
        Selection::NumRange { attr, min, max }
    }

    /// Returns `true` when the object satisfies the selection.
    pub fn accepts(&self, object: &SpatialObject) -> bool {
        match self {
            Selection::All => true,
            Selection::CatEquals { attr, value } => object.cat_value(*attr) == Some(*value),
            Selection::CatIn { attr, values } => object
                .cat_value(*attr)
                .map(|v| values.contains(&v))
                .unwrap_or(false),
            Selection::NumRange { attr, min, max } => object
                .num_value(*attr)
                .map(|v| v >= *min && v <= *max)
                .unwrap_or(false),
        }
    }

    /// The highest attribute index referenced by the selection, if any.
    /// Used for schema validation.
    pub fn referenced_attr(&self) -> Option<usize> {
        match self {
            Selection::All => None,
            Selection::CatEquals { attr, .. }
            | Selection::CatIn { attr, .. }
            | Selection::NumRange { attr, .. } => Some(*attr),
        }
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selection::All => write!(f, "all"),
            Selection::CatEquals { attr, value } => write!(f, "attr{attr}=={value}"),
            Selection::CatIn { attr, values } => write!(f, "attr{attr} in {values:?}"),
            Selection::NumRange { attr, min, max } => write!(f, "attr{attr} in [{min}, {max}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_data::AttrValue;
    use asrs_geo::Point;

    fn obj(cat: u32, num: f64) -> SpatialObject {
        SpatialObject::new(
            0,
            Point::origin(),
            vec![AttrValue::Cat(cat), AttrValue::Num(num)],
        )
    }

    #[test]
    fn all_accepts_everything() {
        assert!(Selection::All.accepts(&obj(0, 0.0)));
        assert!(Selection::default().accepts(&obj(5, -3.0)));
    }

    #[test]
    fn cat_equals_matches_exact_value() {
        let sel = Selection::cat_equals(0, 2);
        assert!(sel.accepts(&obj(2, 0.0)));
        assert!(!sel.accepts(&obj(1, 0.0)));
        // Wrong attribute kind is never accepted.
        assert!(!Selection::cat_equals(1, 2).accepts(&obj(2, 2.0)));
    }

    #[test]
    fn cat_in_matches_any_listed_value() {
        let sel = Selection::cat_in(0, vec![1, 3]);
        assert!(sel.accepts(&obj(1, 0.0)));
        assert!(sel.accepts(&obj(3, 0.0)));
        assert!(!sel.accepts(&obj(2, 0.0)));
    }

    #[test]
    fn num_range_is_inclusive() {
        let sel = Selection::num_range(1, 1.0, 2.0);
        assert!(sel.accepts(&obj(0, 1.0)));
        assert!(sel.accepts(&obj(0, 2.0)));
        assert!(sel.accepts(&obj(0, 1.5)));
        assert!(!sel.accepts(&obj(0, 2.5)));
        // Categorical attribute never satisfies a numeric range.
        assert!(!Selection::num_range(0, 0.0, 10.0).accepts(&obj(5, 5.0)));
    }

    #[test]
    fn referenced_attr_reports_dependency() {
        assert_eq!(Selection::All.referenced_attr(), None);
        assert_eq!(Selection::cat_equals(3, 0).referenced_attr(), Some(3));
        assert_eq!(Selection::num_range(2, 0.0, 1.0).referenced_attr(), Some(2));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", Selection::All), "all");
        assert_eq!(format!("{}", Selection::cat_equals(0, 3)), "attr0==3");
    }
}
