//! Composite aggregators (Definition 2) and their additive statistics
//! layout.
//!
//! Besides computing aggregate representations directly from object sets,
//! the composite aggregator defines a *statistics vector* layout.  A
//! statistics vector is an additive encoding of partially aggregated data:
//! the statistics of a union of disjoint object sets is the element-wise sum
//! of their statistics.  This property is what allows
//!
//! * the `Discretize` procedure of DS-Search to accumulate per-cell
//!   statistics with 2-D difference arrays (Section 4.3), and
//! * the grid index to store suffix-cumulative attribute summary tables and
//!   answer region queries by inclusion–exclusion (Section 5.2, Lemma 8).
//!
//! The mapping is:
//!
//! | Aggregator      | statistics slots            | feature slots |
//! |-----------------|-----------------------------|---------------|
//! | distribution(A) | one count per value of A    | `|dom(A)|`    |
//! | average(A)      | (sum, count)                | 1             |
//! | sum(A)          | (positive sum, negative sum)| 1             |
//! | count           | (count)                     | 1             |

use crate::kahan::StatsAccumulator;
use crate::{
    distance_lower_bound, weighted_distance, AggregatorKind, DistanceMetric, FeatureVector,
    Selection, Weights,
};
use asrs_data::{AttributeKind, Dataset, Schema, SpatialObject};
use asrs_geo::Rect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One `(aggregator, attribute, selection)` triple of a composite
/// aggregator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregatorSpec {
    /// The aggregator and the attribute it reads.
    pub kind: AggregatorKind,
    /// The selection function γ deciding which objects contribute.
    pub selection: Selection,
}

/// Errors raised when building a composite aggregator against a schema.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregatorError {
    /// The referenced attribute index does not exist in the schema.
    UnknownAttribute(usize),
    /// The referenced attribute name does not exist in the schema.
    UnknownAttributeName(String),
    /// A distribution aggregator referenced a numeric attribute, or an
    /// average/sum aggregator referenced a categorical attribute.
    KindMismatch {
        /// The offending aggregator.
        aggregator: AggregatorKind,
    },
    /// The composite aggregator has no component.
    Empty,
}

impl fmt::Display for AggregatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregatorError::UnknownAttribute(idx) => write!(f, "unknown attribute index {idx}"),
            AggregatorError::UnknownAttributeName(name) => {
                write!(f, "unknown attribute name {name}")
            }
            AggregatorError::KindMismatch { aggregator } => {
                write!(
                    f,
                    "aggregator {aggregator} is incompatible with the attribute kind"
                )
            }
            AggregatorError::Empty => {
                write!(f, "composite aggregator must have at least one component")
            }
        }
    }
}

impl std::error::Error for AggregatorError {}

/// Per-spec layout information resolved against the schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SpecLayout {
    stats_offset: usize,
    stats_len: usize,
    feat_offset: usize,
    feat_len: usize,
    /// Declared numeric domain of the attribute (for average bounds).
    numeric_domain: Option<(f64, f64)>,
}

/// A composite aggregator resolved against a dataset schema
/// (Definition 2 / 3 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeAggregator {
    schema: Schema,
    specs: Vec<AggregatorSpec>,
    layouts: Vec<SpecLayout>,
    stats_dim: usize,
    feature_dim: usize,
}

impl CompositeAggregator {
    /// Builds a composite aggregator from explicit specs, validating every
    /// spec against the schema.
    pub fn new(schema: &Schema, specs: Vec<AggregatorSpec>) -> Result<Self, AggregatorError> {
        if specs.is_empty() {
            return Err(AggregatorError::Empty);
        }
        let mut layouts = Vec::with_capacity(specs.len());
        let mut stats_dim = 0usize;
        let mut feature_dim = 0usize;
        for spec in &specs {
            if let Some(attr) = spec.selection.referenced_attr() {
                if schema.attribute(attr).is_none() {
                    return Err(AggregatorError::UnknownAttribute(attr));
                }
            }
            let (stats_len, feat_len, numeric_domain) = match spec.kind {
                AggregatorKind::Distribution { attr } => {
                    let def = schema
                        .attribute(attr)
                        .ok_or(AggregatorError::UnknownAttribute(attr))?;
                    match &def.kind {
                        AttributeKind::Categorical { cardinality, .. } => {
                            (*cardinality, *cardinality, None)
                        }
                        AttributeKind::Numeric { .. } => {
                            return Err(AggregatorError::KindMismatch {
                                aggregator: spec.kind,
                            })
                        }
                    }
                }
                AggregatorKind::Average { attr } => {
                    let def = schema
                        .attribute(attr)
                        .ok_or(AggregatorError::UnknownAttribute(attr))?;
                    match &def.kind {
                        AttributeKind::Numeric { min, max } => (2, 1, Some((*min, *max))),
                        AttributeKind::Categorical { .. } => {
                            return Err(AggregatorError::KindMismatch {
                                aggregator: spec.kind,
                            })
                        }
                    }
                }
                AggregatorKind::Sum { attr } => {
                    let def = schema
                        .attribute(attr)
                        .ok_or(AggregatorError::UnknownAttribute(attr))?;
                    match &def.kind {
                        AttributeKind::Numeric { .. } => (2, 1, None),
                        AttributeKind::Categorical { .. } => {
                            return Err(AggregatorError::KindMismatch {
                                aggregator: spec.kind,
                            })
                        }
                    }
                }
                AggregatorKind::Count => (1, 1, None),
            };
            layouts.push(SpecLayout {
                stats_offset: stats_dim,
                stats_len,
                feat_offset: feature_dim,
                feat_len,
                numeric_domain,
            });
            stats_dim += stats_len;
            feature_dim += feat_len;
        }
        Ok(Self {
            schema: schema.clone(),
            specs,
            layouts,
            stats_dim,
            feature_dim,
        })
    }

    /// Starts a fluent builder that resolves attribute names against the
    /// schema.
    pub fn builder(schema: &Schema) -> CompositeBuilder {
        CompositeBuilder {
            schema: schema.clone(),
            specs: Vec::new(),
            error: None,
        }
    }

    /// The schema the aggregator was resolved against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The component specs.
    pub fn specs(&self) -> &[AggregatorSpec] {
        &self.specs
    }

    /// Dimensionality of the aggregate representation (feature vector).
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Dimensionality of the additive statistics vector.
    pub fn stats_dim(&self) -> usize {
        self.stats_dim
    }

    /// Human-readable labels for the feature dimensions, in order.  Useful
    /// for reports (e.g. the stacked-bar comparison of the case study).
    pub fn dimension_labels(&self) -> Vec<String> {
        let mut labels = Vec::with_capacity(self.feature_dim);
        for (spec, layout) in self.specs.iter().zip(&self.layouts) {
            match spec.kind {
                AggregatorKind::Distribution { attr } => {
                    for value in 0..layout.feat_len {
                        labels.push(format!(
                            "{}={}",
                            self.schema
                                .attribute(attr)
                                .map(|a| a.name.clone())
                                .unwrap_or_else(|| format!("attr{attr}")),
                            self.schema.category_label(attr, value as u32)
                        ));
                    }
                }
                AggregatorKind::Average { attr } => {
                    labels.push(format!(
                        "avg({})",
                        self.schema
                            .attribute(attr)
                            .map(|a| a.name.clone())
                            .unwrap_or_else(|| format!("attr{attr}"))
                    ));
                }
                AggregatorKind::Sum { attr } => {
                    labels.push(format!(
                        "sum({})",
                        self.schema
                            .attribute(attr)
                            .map(|a| a.name.clone())
                            .unwrap_or_else(|| format!("attr{attr}"))
                    ));
                }
                AggregatorKind::Count => labels.push("count".to_string()),
            }
        }
        labels
    }

    /// Returns `true` when `object` can contribute to any component of the
    /// statistics vector, i.e. at least one selection function accepts it.
    /// Objects rejected by every selection are invisible to the aggregator,
    /// so the search layer can drop their ASP rectangles outright — the
    /// class-constrained MaxRS variant and selective aggregators prune
    /// dramatically better for it.
    pub fn contributes(&self, object: &SpatialObject) -> bool {
        self.specs.iter().any(|spec| spec.selection.accepts(object))
    }

    /// Adds the contribution of one object to a statistics vector.
    ///
    /// In debug builds, asserts that `stats.len() == self.stats_dim()`.
    pub fn accumulate_object(&self, object: &SpatialObject, stats: &mut [f64]) {
        debug_assert_eq!(stats.len(), self.stats_dim);
        for (spec, layout) in self.specs.iter().zip(&self.layouts) {
            if !spec.selection.accepts(object) {
                continue;
            }
            let slot = &mut stats[layout.stats_offset..layout.stats_offset + layout.stats_len];
            match spec.kind {
                AggregatorKind::Distribution { attr } => {
                    if let Some(value) = object.cat_value(attr) {
                        let idx = value as usize;
                        if idx < slot.len() {
                            slot[idx] += 1.0;
                        }
                    }
                }
                AggregatorKind::Average { attr } => {
                    if let Some(value) = object.num_value(attr) {
                        slot[0] += value;
                        slot[1] += 1.0;
                    }
                }
                AggregatorKind::Sum { attr } => {
                    if let Some(value) = object.num_value(attr) {
                        if value >= 0.0 {
                            slot[0] += value;
                        } else {
                            slot[1] += value;
                        }
                    }
                }
                AggregatorKind::Count => slot[0] += 1.0,
            }
        }
    }

    /// Adds the contribution of one object to a compensated
    /// [`StatsAccumulator`], the Kahan–Neumaier sibling of
    /// [`CompositeAggregator::accumulate_object`].
    ///
    /// Count-like slots (distribution counts, object counts) sum small
    /// integers, which float addition handles exactly in any order; the
    /// compensation pays off on the `sum` and `average` aggregators, whose
    /// slots sum arbitrary attribute values — there it keeps the
    /// accumulated statistics at the correctly rounded sum, which is
    /// order-independent, instead of drifting with the accumulation order.
    pub fn accumulate_object_into(&self, object: &SpatialObject, acc: &mut StatsAccumulator) {
        debug_assert_eq!(acc.dim(), self.stats_dim);
        for (spec, layout) in self.specs.iter().zip(&self.layouts) {
            if !spec.selection.accepts(object) {
                continue;
            }
            let base = layout.stats_offset;
            match spec.kind {
                AggregatorKind::Distribution { attr } => {
                    if let Some(value) = object.cat_value(attr) {
                        let idx = value as usize;
                        if idx < layout.stats_len {
                            acc.add(base + idx, 1.0);
                        }
                    }
                }
                AggregatorKind::Average { attr } => {
                    if let Some(value) = object.num_value(attr) {
                        acc.add(base, value);
                        acc.add(base + 1, 1.0);
                    }
                }
                AggregatorKind::Sum { attr } => {
                    if let Some(value) = object.num_value(attr) {
                        if value >= 0.0 {
                            acc.add(base, value);
                        } else {
                            acc.add(base + 1, value);
                        }
                    }
                }
                AggregatorKind::Count => acc.add(base, 1.0),
            }
        }
    }

    /// Computes the statistics vector of a set of objects, with compensated
    /// (Kahan–Neumaier) summation so float-sum slots land on the correctly
    /// rounded — and therefore order-independent — total.
    pub fn stats_of<'a, I>(&self, objects: I) -> Vec<f64>
    where
        I: IntoIterator<Item = &'a SpatialObject>,
    {
        let mut acc = StatsAccumulator::new(self.stats_dim);
        for o in objects {
            self.accumulate_object_into(o, &mut acc);
        }
        acc.finish()
    }

    /// Converts a statistics vector into the aggregate representation.
    ///
    /// The average of an empty selection is defined as 0 (the paper leaves
    /// this case unspecified; 0 keeps the representation total).
    pub fn stats_to_features(&self, stats: &[f64]) -> FeatureVector {
        debug_assert_eq!(stats.len(), self.stats_dim);
        let mut features = vec![0.0; self.feature_dim];
        for (spec, layout) in self.specs.iter().zip(&self.layouts) {
            let slot = &stats[layout.stats_offset..layout.stats_offset + layout.stats_len];
            let out = &mut features[layout.feat_offset..layout.feat_offset + layout.feat_len];
            match spec.kind {
                AggregatorKind::Distribution { .. } => out.copy_from_slice(slot),
                AggregatorKind::Average { .. } => {
                    out[0] = if slot[1] > 0.0 {
                        slot[0] / slot[1]
                    } else {
                        0.0
                    };
                }
                AggregatorKind::Sum { .. } => out[0] = slot[0] + slot[1],
                AggregatorKind::Count => out[0] = slot[0],
            }
        }
        FeatureVector::new(features)
    }

    /// Computes the aggregate representation of a set of objects
    /// (Definition 3).
    pub fn aggregate<'a, I>(&self, objects: I) -> FeatureVector
    where
        I: IntoIterator<Item = &'a SpatialObject>,
    {
        let stats = self.stats_of(objects);
        self.stats_to_features(&stats)
    }

    /// Computes the aggregate representation of the objects of `dataset`
    /// that lie strictly inside `region` (the representation `F(r)` of
    /// Definition 3, with the strict containment of Lemma 1).
    pub fn aggregate_region(&self, dataset: &Dataset, region: &Rect) -> FeatureVector {
        self.aggregate(
            dataset
                .objects()
                .filter(|o| region.strictly_contains_point(&o.location)),
        )
    }

    /// Derives component-wise bounds `[v̲, v̄]` on the aggregate
    /// representation of any object set `S` with `L ⊆ S ⊆ U`, from the
    /// statistics of `L` (`lower_stats`) and `U` (`upper_stats`).
    ///
    /// This is the bound used both for dirty cells in `Discretize`
    /// (Lemma 4 / Lemma 5) and for candidate regions in the grid index
    /// (Section 5.3).  The bounds are sound but not always tight (the
    /// average aggregator falls back to the attribute's declared domain when
    /// the optional objects could change the mean).
    pub fn feature_bounds(
        &self,
        lower_stats: &[f64],
        upper_stats: &[f64],
    ) -> (FeatureVector, FeatureVector) {
        debug_assert_eq!(lower_stats.len(), self.stats_dim);
        debug_assert_eq!(upper_stats.len(), self.stats_dim);
        let mut lo = vec![0.0; self.feature_dim];
        let mut hi = vec![0.0; self.feature_dim];
        for (spec, layout) in self.specs.iter().zip(&self.layouts) {
            let l = &lower_stats[layout.stats_offset..layout.stats_offset + layout.stats_len];
            let u = &upper_stats[layout.stats_offset..layout.stats_offset + layout.stats_len];
            let lo_out = &mut lo[layout.feat_offset..layout.feat_offset + layout.feat_len];
            let hi_out = &mut hi[layout.feat_offset..layout.feat_offset + layout.feat_len];
            match spec.kind {
                AggregatorKind::Distribution { .. } => {
                    lo_out.copy_from_slice(l);
                    hi_out.copy_from_slice(u);
                }
                AggregatorKind::Count => {
                    lo_out[0] = l[0];
                    hi_out[0] = u[0];
                }
                AggregatorKind::Sum { .. } => {
                    // Positive contributions of optional objects can only
                    // raise the sum, negative ones can only lower it.
                    lo_out[0] = l[0] + u[1];
                    hi_out[0] = u[0] + l[1];
                }
                AggregatorKind::Average { .. } => {
                    let (l_sum, l_cnt) = (l[0], l[1]);
                    let (u_sum, u_cnt) = (u[0], u[1]);
                    if u_cnt <= 0.0 {
                        // No object can ever be selected: the average is
                        // exactly the empty-selection convention, 0.
                        lo_out[0] = 0.0;
                        hi_out[0] = 0.0;
                    } else if (u_cnt - l_cnt).abs() < f64::EPSILON && (u_sum - l_sum).abs() < 1e-9 {
                        // The mandatory and optional sets coincide: exact.
                        let avg = l_sum / l_cnt;
                        lo_out[0] = avg;
                        hi_out[0] = avg;
                    } else {
                        let (dom_min, dom_max) =
                            layout.numeric_domain.unwrap_or((f64::MIN, f64::MAX));
                        // Up to `k` optional objects, each with a value in
                        // the attribute domain, may join the mandatory set.
                        // The average (sl + x) / (cl + j), with j ≤ k chosen
                        // objects contributing x ∈ [j·dom_min, j·dom_max],
                        // is monotone in j for fixed per-object extremes,
                        // so its range is spanned by j = 0 and j = k.
                        let k = (u_cnt - l_cnt).max(0.0);
                        let (min_avg, max_avg) = if l_cnt > 0.0 {
                            let avg_l = l_sum / l_cnt;
                            (
                                avg_l.min((l_sum + k * dom_min) / (l_cnt + k)),
                                avg_l.max((l_sum + k * dom_max) / (l_cnt + k)),
                            )
                        } else {
                            // The selection may be empty ⇒ the value 0 is
                            // also attainable.
                            (dom_min.min(0.0), dom_max.max(0.0))
                        };
                        lo_out[0] = min_avg;
                        hi_out[0] = max_avg;
                    }
                }
            }
        }
        (FeatureVector::new(lo), FeatureVector::new(hi))
    }

    /// Convenience wrapper: the Equation-1 lower bound on the distance to
    /// `query` for any object set between the two statistics vectors.
    pub fn lower_bound_distance(
        &self,
        query: &FeatureVector,
        lower_stats: &[f64],
        upper_stats: &[f64],
        weights: &Weights,
        metric: DistanceMetric,
    ) -> f64 {
        let (lo, hi) = self.feature_bounds(lower_stats, upper_stats);
        distance_lower_bound(query, &lo, &hi, weights, metric)
    }

    /// Convenience wrapper: the weighted distance between two aggregate
    /// representations.
    pub fn distance(
        &self,
        a: &FeatureVector,
        b: &FeatureVector,
        weights: &Weights,
        metric: DistanceMetric,
    ) -> f64 {
        weighted_distance(a, b, weights, metric)
    }
}

/// Fluent builder for [`CompositeAggregator`] resolving attribute names.
#[derive(Debug, Clone)]
pub struct CompositeBuilder {
    schema: Schema,
    specs: Vec<AggregatorSpec>,
    error: Option<AggregatorError>,
}

impl CompositeBuilder {
    fn resolve(&mut self, name: &str) -> Option<usize> {
        match self.schema.attr_index(name) {
            Some(idx) => Some(idx),
            None => {
                if self.error.is_none() {
                    self.error = Some(AggregatorError::UnknownAttributeName(name.to_string()));
                }
                None
            }
        }
    }

    /// Adds a distribution aggregator over the named categorical attribute.
    pub fn distribution(mut self, attr_name: &str, selection: Selection) -> Self {
        if let Some(attr) = self.resolve(attr_name) {
            self.specs.push(AggregatorSpec {
                kind: AggregatorKind::Distribution { attr },
                selection,
            });
        }
        self
    }

    /// Adds an average aggregator over the named numeric attribute.
    pub fn average(mut self, attr_name: &str, selection: Selection) -> Self {
        if let Some(attr) = self.resolve(attr_name) {
            self.specs.push(AggregatorSpec {
                kind: AggregatorKind::Average { attr },
                selection,
            });
        }
        self
    }

    /// Adds a sum aggregator over the named numeric attribute.
    pub fn sum(mut self, attr_name: &str, selection: Selection) -> Self {
        if let Some(attr) = self.resolve(attr_name) {
            self.specs.push(AggregatorSpec {
                kind: AggregatorKind::Sum { attr },
                selection,
            });
        }
        self
    }

    /// Adds a count aggregator.
    pub fn count(mut self, selection: Selection) -> Self {
        self.specs.push(AggregatorSpec {
            kind: AggregatorKind::Count,
            selection,
        });
        self
    }

    /// Finalises the composite aggregator.
    pub fn build(self) -> Result<CompositeAggregator, AggregatorError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        CompositeAggregator::new(&self.schema, self.specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_data::{AttrValue, AttributeDef, DatasetBuilder};
    use asrs_geo::Point;

    /// Schema and dataset matching the paper's running example (Fig. 1):
    /// categories {Apartment, Supermarket, Restaurant, Bus stop} and a price
    /// attribute that is meaningful for apartments.
    fn example_schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new(
                "category",
                AttributeKind::categorical_labeled(vec![
                    "Apartment",
                    "Supermarket",
                    "Restaurant",
                    "Bus stop",
                ]),
            ),
            AttributeDef::new("price", AttributeKind::numeric(0.0, 10.0)),
        ])
    }

    fn example_dataset() -> Dataset {
        let mut b = DatasetBuilder::new(example_schema());
        // Query region r_q of Example 2: two apartments (price 2 and 1.5),
        // one supermarket, one restaurant, one bus stop.
        b.push(1.0, 1.0, vec![AttrValue::Cat(0), AttrValue::Num(2.0)]);
        b.push(1.2, 1.4, vec![AttrValue::Cat(0), AttrValue::Num(1.5)]);
        b.push(1.6, 1.1, vec![AttrValue::Cat(1), AttrValue::Num(0.0)]);
        b.push(1.3, 1.8, vec![AttrValue::Cat(2), AttrValue::Num(0.0)]);
        b.push(1.9, 1.9, vec![AttrValue::Cat(3), AttrValue::Num(0.0)]);
        b.build().unwrap()
    }

    fn example_aggregator() -> CompositeAggregator {
        CompositeAggregator::builder(&example_schema())
            .distribution("category", Selection::All)
            .average("price", Selection::cat_equals(0, 0))
            .build()
            .unwrap()
    }

    #[test]
    fn example_2_and_3_representation() {
        // F = ((f_D, Category, γ_all), (f_A, Price, γ_apt)), F(r_q) =
        // (2, 1, 1, 1, 1.75) per Example 3.
        let ds = example_dataset();
        let agg = example_aggregator();
        assert_eq!(agg.feature_dim(), 5);
        let rep = agg.aggregate(ds.objects());
        assert_eq!(rep.as_slice(), &[2.0, 1.0, 1.0, 1.0, 1.75]);
    }

    #[test]
    fn sum_aggregator_matches_example_2() {
        let ds = example_dataset();
        let agg = CompositeAggregator::builder(&example_schema())
            .sum("price", Selection::cat_equals(0, 0))
            .build()
            .unwrap();
        let rep = agg.aggregate(ds.objects());
        assert_eq!(rep.as_slice(), &[3.5]);
    }

    #[test]
    fn aggregate_region_uses_strict_containment() {
        let ds = example_dataset();
        let agg = example_aggregator();
        // A region whose boundary passes exactly through the object at
        // (1.0, 1.0): that object must not be counted.
        let region = Rect::new(1.0, 1.0, 2.0, 2.0);
        let rep = agg.aggregate_region(&ds, &region);
        assert_eq!(rep.as_slice(), &[1.0, 1.0, 1.0, 1.0, 1.5]);
    }

    #[test]
    fn empty_region_has_zero_representation() {
        let ds = example_dataset();
        let agg = example_aggregator();
        let rep = agg.aggregate_region(&ds, &Rect::new(100.0, 100.0, 101.0, 101.0));
        assert_eq!(rep.as_slice(), &[0.0; 5]);
    }

    #[test]
    fn stats_are_additive() {
        let ds = example_dataset();
        let agg = example_aggregator();
        let all = agg.stats_of(ds.objects());
        let first = agg.stats_of(ds.objects().take(2));
        let rest = agg.stats_of(ds.objects().skip(2));
        let summed: Vec<f64> = first.iter().zip(&rest).map(|(a, b)| a + b).collect();
        for (a, b) in all.iter().zip(&summed) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn builder_reports_unknown_attribute() {
        let err = CompositeAggregator::builder(&example_schema())
            .distribution("no_such_attribute", Selection::All)
            .build()
            .unwrap_err();
        assert!(matches!(err, AggregatorError::UnknownAttributeName(_)));
    }

    #[test]
    fn new_rejects_kind_mismatches_and_empty() {
        let schema = example_schema();
        let err = CompositeAggregator::new(
            &schema,
            vec![AggregatorSpec {
                kind: AggregatorKind::Distribution { attr: 1 },
                selection: Selection::All,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, AggregatorError::KindMismatch { .. }));

        let err = CompositeAggregator::new(
            &schema,
            vec![AggregatorSpec {
                kind: AggregatorKind::Average { attr: 0 },
                selection: Selection::All,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, AggregatorError::KindMismatch { .. }));

        let err = CompositeAggregator::new(&schema, vec![]).unwrap_err();
        assert!(matches!(err, AggregatorError::Empty));

        let err = CompositeAggregator::new(
            &schema,
            vec![AggregatorSpec {
                kind: AggregatorKind::Sum { attr: 9 },
                selection: Selection::All,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, AggregatorError::UnknownAttribute(9)));
    }

    #[test]
    fn dimension_labels_are_descriptive() {
        let agg = example_aggregator();
        let labels = agg.dimension_labels();
        assert_eq!(labels.len(), 5);
        assert_eq!(labels[0], "category=Apartment");
        assert_eq!(labels[4], "avg(price)");
    }

    #[test]
    fn feature_bounds_contain_all_intermediate_sets() {
        let ds = example_dataset();
        let agg = example_aggregator();
        let objects: Vec<&SpatialObject> = ds.objects().collect();
        // Mandatory set: first 2 objects; optional: remaining 3.
        let lower_stats = agg.stats_of(objects.iter().copied().take(2));
        let upper_stats = agg.stats_of(objects.iter().copied());
        let (lo, hi) = agg.feature_bounds(&lower_stats, &upper_stats);
        // Check every subset S with L ⊆ S ⊆ U (8 subsets of the optional 3).
        for mask in 0..8u32 {
            let subset: Vec<&SpatialObject> = objects
                .iter()
                .copied()
                .take(2)
                .chain(
                    objects
                        .iter()
                        .copied()
                        .skip(2)
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, o)| o),
                )
                .collect();
            let rep = agg.aggregate(subset);
            for d in 0..agg.feature_dim() {
                assert!(
                    lo[d] - 1e-9 <= rep[d] && rep[d] <= hi[d] + 1e-9,
                    "dim {d}: {} not within [{}, {}] for mask {mask}",
                    rep[d],
                    lo[d],
                    hi[d]
                );
            }
        }
    }

    #[test]
    fn feature_bounds_average_exact_cases() {
        let schema = example_schema();
        let agg = CompositeAggregator::builder(&schema)
            .average("price", Selection::All)
            .build()
            .unwrap();
        // No object can be selected: bounds collapse to 0.
        let zero = vec![0.0, 0.0];
        let (lo, hi) = agg.feature_bounds(&zero, &zero);
        assert_eq!((lo[0], hi[0]), (0.0, 0.0));
        // Mandatory == optional: exact average.
        let stats = vec![9.0, 3.0];
        let (lo, hi) = agg.feature_bounds(&stats, &stats);
        assert_eq!((lo[0], hi[0]), (3.0, 3.0));
        // Mandatory empty, optional non-empty: 0 must be attainable.
        let (lo, hi) = agg.feature_bounds(&zero, &stats);
        assert!(lo[0] <= 0.0 && hi[0] >= 3.0);
    }

    #[test]
    fn sum_bounds_handle_negative_values() {
        let schema = Schema::new(vec![AttributeDef::new(
            "delta",
            AttributeKind::numeric(-10.0, 10.0),
        )]);
        let agg = CompositeAggregator::builder(&schema)
            .sum("delta", Selection::All)
            .build()
            .unwrap();
        let mk = |v: f64| SpatialObject::new(0, Point::origin(), vec![AttrValue::Num(v)]);
        let objs = [mk(5.0), mk(-3.0), mk(2.0)];
        let lower_stats = agg.stats_of(objs.iter().take(1)); // mandatory: +5
        let upper_stats = agg.stats_of(objs.iter()); // all three
        let (lo, hi) = agg.feature_bounds(&lower_stats, &upper_stats);
        // Attainable sums: 5, 2, 7, 4 ⇒ bounds must cover [2, 7].
        assert!(lo[0] <= 2.0 + 1e-12);
        assert!(hi[0] >= 7.0 - 1e-12);
    }

    #[test]
    fn count_aggregator_counts_selected_objects() {
        let ds = example_dataset();
        let agg = CompositeAggregator::builder(&example_schema())
            .count(Selection::cat_equals(0, 0))
            .build()
            .unwrap();
        let rep = agg.aggregate(ds.objects());
        assert_eq!(rep.as_slice(), &[2.0]);
    }

    #[test]
    fn lower_bound_distance_wrapper_is_consistent() {
        let ds = example_dataset();
        let agg = example_aggregator();
        let query = agg.aggregate(ds.objects());
        let weights = Weights::uniform(agg.feature_dim());
        let lower_stats = agg.stats_of(ds.objects().take(3));
        let upper_stats = agg.stats_of(ds.objects());
        let lb = agg.lower_bound_distance(
            &query,
            &lower_stats,
            &upper_stats,
            &weights,
            DistanceMetric::L1,
        );
        // The full set is admissible and has distance 0, so the bound must
        // be 0 as well.
        assert_eq!(lb, 0.0);
        // Distance helper agrees with the free function.
        let d = agg.distance(&query, &query, &weights, DistanceMetric::L1);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn float_sum_aggregates_are_order_independent() {
        // Values chosen so plain `+=` summation visibly depends on the
        // accumulation order; the compensated `stats_of` must land every
        // permutation on the same bits.
        let schema = Schema::new(vec![AttributeDef::new(
            "delta",
            AttributeKind::numeric(-1e16, 1e16),
        )]);
        let agg = CompositeAggregator::builder(&schema)
            .sum("delta", Selection::All)
            .average("delta", Selection::All)
            .build()
            .unwrap();
        let values = [1e16, 3.25, -1e16, 1e8, 0.125, -1e8, 7.5, 1e12, -1e12];
        let mut objects: Vec<SpatialObject> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| SpatialObject::new(i as u64, Point::origin(), vec![AttrValue::Num(v)]))
            .collect();
        let reference = agg.stats_of(objects.iter());
        for rot in 0..objects.len() {
            objects.rotate_left(1);
            let forward = agg.stats_of(objects.iter());
            let backward = agg.stats_of(objects.iter().rev());
            for k in 0..agg.stats_dim() {
                assert_eq!(
                    forward[k].to_bits(),
                    reference[k].to_bits(),
                    "slot {k}, rotation {rot}"
                );
                assert_eq!(
                    backward[k].to_bits(),
                    reference[k].to_bits(),
                    "slot {k}, reversed rotation {rot}"
                );
            }
        }
        // The positive-sum slot holds the correctly rounded total (which a
        // plain left-to-right `+` chain misses by an ulp here).
        let mut expected = crate::CompensatedSum::new();
        for v in [1e16, 3.25, 1e8, 0.125, 7.5, 1e12] {
            expected.add(v);
        }
        assert_eq!(reference[0], expected.value());
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", AggregatorError::Empty).contains("at least one"));
        assert!(format!("{}", AggregatorError::UnknownAttribute(3)).contains('3'));
    }
}
