//! Feature vectors (aggregate representations) and dimension weights.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Deref, Index};

/// The aggregate representation `F(r)` of a region: the concatenation of
/// the outputs of every aggregator of a composite aggregator
/// (Definition 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FeatureVector(pub Vec<f64>);

impl FeatureVector {
    /// Creates a feature vector from raw values.
    pub fn new(values: Vec<f64>) -> Self {
        Self(values)
    }

    /// A zero vector of the given dimensionality.
    pub fn zeros(dim: usize) -> Self {
        Self(vec![0.0; dim])
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Consumes the vector and returns the raw values.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Returns `true` when every component is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }
}

impl Deref for FeatureVector {
    type Target = [f64];

    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl Index<usize> for FeatureVector {
    type Output = f64;

    fn index(&self, idx: usize) -> &f64 {
        &self.0[idx]
    }
}

impl From<Vec<f64>> for FeatureVector {
    fn from(values: Vec<f64>) -> Self {
        Self(values)
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        write!(f, ")")
    }
}

/// Per-dimension weights `w` used when computing the distance between two
/// aggregate representations (Definition 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weights(pub Vec<f64>);

impl Weights {
    /// Creates a weight vector.
    ///
    /// # Panics
    ///
    /// Panics when any weight is negative or non-finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        Self(weights)
    }

    /// Uniform weights of 1 for `dim` dimensions.
    pub fn uniform(dim: usize) -> Self {
        Self(vec![1.0; dim])
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

impl Deref for Weights {
    type Target = [f64];

    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl From<Vec<f64>> for Weights {
    fn from(weights: Vec<f64>) -> Self {
        Self::new(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_basics() {
        let v = FeatureVector::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.dim(), 3);
        assert_eq!(v[1], 2.0);
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0]);
        assert!(v.is_finite());
        assert_eq!(FeatureVector::zeros(2).as_slice(), &[0.0, 0.0]);
        assert_eq!(v.clone().into_inner(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn feature_vector_detects_non_finite() {
        assert!(!FeatureVector::new(vec![1.0, f64::NAN]).is_finite());
    }

    #[test]
    fn feature_vector_display() {
        assert_eq!(
            format!("{}", FeatureVector::new(vec![1.0, 2.5])),
            "(1.0000, 2.5000)"
        );
    }

    #[test]
    fn weights_uniform_and_from() {
        assert_eq!(Weights::uniform(3).as_slice(), &[1.0, 1.0, 1.0]);
        let w: Weights = vec![0.5, 0.25].into();
        assert_eq!(w.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn weights_reject_negative() {
        Weights::new(vec![1.0, -0.5]);
    }

    #[test]
    fn deref_allows_iteration() {
        let v = FeatureVector::new(vec![1.0, 2.0]);
        let sum: f64 = v.iter().sum();
        assert_eq!(sum, 3.0);
        let w = Weights::uniform(4);
        assert_eq!(w.len(), 4);
    }
}
