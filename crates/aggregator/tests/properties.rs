//! Property-style tests for the aggregation machinery: additivity of the
//! statistics layout, soundness of the feature bounds and of the Equation-1
//! distance lower bound.
//!
//! The offline build environment has no `proptest`, so the properties are
//! exercised over seeded random inputs drawn from the vendored `rand`
//! stand-in: same invariants, deterministic case generation.

use asrs_aggregator::{
    distance_lower_bound, weighted_distance, CompositeAggregator, DistanceMetric, Selection,
    Weights,
};
use asrs_data::{AttrValue, AttributeDef, AttributeKind, Schema, SpatialObject};
use asrs_geo::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

fn schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("category", AttributeKind::categorical(5)),
        AttributeDef::new("value", AttributeKind::numeric(-20.0, 20.0)),
    ])
}

fn aggregator() -> CompositeAggregator {
    CompositeAggregator::builder(&schema())
        .distribution("category", Selection::All)
        .average("value", Selection::All)
        .sum("value", Selection::cat_in(0, vec![0, 1, 2]))
        .count(Selection::cat_equals(0, 3))
        .build()
        .expect("aggregator builds")
}

fn rand_object(rng: &mut SmallRng) -> SpatialObject {
    SpatialObject::new(
        0,
        Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)),
        vec![
            AttrValue::Cat(rng.gen_range(0u32..5)),
            AttrValue::Num(rng.gen_range(-20.0..20.0)),
        ],
    )
}

fn rand_objects(rng: &mut SmallRng, max: usize) -> Vec<SpatialObject> {
    let len = rng.gen_range(0..max);
    (0..len).map(|_| rand_object(rng)).collect()
}

#[test]
fn stats_are_additive_over_partitions() {
    let agg = aggregator();
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects = rand_objects(&mut rng, 40);
        let split = rng.gen_range(0usize..40).min(objects.len());
        let all = agg.stats_of(objects.iter());
        let left = agg.stats_of(objects.iter().take(split));
        let right = agg.stats_of(objects.iter().skip(split));
        for ((a, l), r) in all.iter().zip(&left).zip(&right) {
            assert!((a - (l + r)).abs() < 1e-9);
        }
    }
}

#[test]
fn feature_bounds_are_sound_for_random_supersets() {
    let agg = aggregator();
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let mandatory = rand_objects(&mut rng, 10);
        let optional = rand_objects(&mut rng, 8);
        let mask: u32 = rng.gen_range(0u32..256);
        let lower_stats = agg.stats_of(mandatory.iter());
        let upper_stats = agg.stats_of(mandatory.iter().chain(optional.iter()));
        let (lo, hi) = agg.feature_bounds(&lower_stats, &upper_stats);
        // Pick an arbitrary admissible subset via the mask.
        let chosen: Vec<&SpatialObject> = mandatory
            .iter()
            .chain(
                optional
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << (i % 32)) != 0)
                    .map(|(_, o)| o),
            )
            .collect();
        let rep = agg.aggregate(chosen);
        for d in 0..agg.feature_dim() {
            assert!(
                lo[d] - 1e-9 <= rep[d] && rep[d] <= hi[d] + 1e-9,
                "dimension {} value {} escapes bounds [{}, {}]",
                d,
                rep[d],
                lo[d],
                hi[d]
            );
        }
    }
}

#[test]
fn lower_bound_never_exceeds_distance_of_admissible_sets() {
    let agg = aggregator();
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(2000 + seed);
        let mandatory = rand_objects(&mut rng, 8);
        let optional = rand_objects(&mut rng, 6);
        let query_objects = rand_objects(&mut rng, 10);
        let mask: u32 = rng.gen_range(0u32..64);
        let query = agg.aggregate(query_objects.iter());
        let weights = Weights::uniform(agg.feature_dim());
        let lower_stats = agg.stats_of(mandatory.iter());
        let upper_stats = agg.stats_of(mandatory.iter().chain(optional.iter()));
        for metric in [DistanceMetric::L1, DistanceMetric::L2] {
            let lb = agg.lower_bound_distance(&query, &lower_stats, &upper_stats, &weights, metric);
            let chosen: Vec<&SpatialObject> = mandatory
                .iter()
                .chain(
                    optional
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << (i % 32)) != 0)
                        .map(|(_, o)| o),
                )
                .collect();
            let rep = agg.aggregate(chosen);
            let d = weighted_distance(&rep, &query, &weights, metric);
            assert!(
                lb <= d + 1e-9,
                "lb {lb} exceeds distance {d} under {metric:?}"
            );
        }
    }
}

#[test]
fn distance_metric_axioms() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(3000 + seed);
        let dim = rng.gen_range(1usize..12);
        let a: Vec<f64> = (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let b: Vec<f64> = (0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let w = vec![1.0; dim];
        for metric in [DistanceMetric::L1, DistanceMetric::L2] {
            let dab = weighted_distance(&a, &b, &w, metric);
            let dba = weighted_distance(&b, &a, &w, metric);
            assert!((dab - dba).abs() < 1e-9, "symmetry");
            assert!(dab >= 0.0, "non-negativity");
            assert!(
                weighted_distance(&a, &a, &w, metric).abs() < 1e-12,
                "identity"
            );
        }
    }
}

#[test]
fn lower_bound_is_tight_when_bounds_collapse() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(4000 + seed);
        let dim = rng.gen_range(1usize..8);
        let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let w = vec![1.0; dim];
        for metric in [DistanceMetric::L1, DistanceMetric::L2] {
            let lb = distance_lower_bound(&q, &v, &v, &w, metric);
            let d = weighted_distance(&q, &v, &w, metric);
            assert!((lb - d).abs() < 1e-9);
        }
    }
}
