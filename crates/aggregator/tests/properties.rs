//! Property-based tests for the aggregation machinery: additivity of the
//! statistics layout, soundness of the feature bounds and of the Equation-1
//! distance lower bound.

use asrs_aggregator::{
    distance_lower_bound, weighted_distance, CompositeAggregator, DistanceMetric, Selection,
    Weights,
};
use asrs_data::{AttrValue, AttributeDef, AttributeKind, Schema, SpatialObject};
use asrs_geo::Point;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("category", AttributeKind::categorical(5)),
        AttributeDef::new("value", AttributeKind::numeric(-20.0, 20.0)),
    ])
}

fn aggregator() -> CompositeAggregator {
    CompositeAggregator::builder(&schema())
        .distribution("category", Selection::All)
        .average("value", Selection::All)
        .sum("value", Selection::cat_in(0, vec![0, 1, 2]))
        .count(Selection::cat_equals(0, 3))
        .build()
        .expect("aggregator builds")
}

fn arb_object() -> impl Strategy<Value = SpatialObject> {
    (0u32..5, -20.0..20.0f64, -100.0..100.0f64, -100.0..100.0f64).prop_map(|(cat, val, x, y)| {
        SpatialObject::new(
            0,
            Point::new(x, y),
            vec![AttrValue::Cat(cat), AttrValue::Num(val)],
        )
    })
}

proptest! {
    #[test]
    fn stats_are_additive_over_partitions(
        objects in prop::collection::vec(arb_object(), 0..40),
        split in 0usize..40,
    ) {
        let agg = aggregator();
        let split = split.min(objects.len());
        let all = agg.stats_of(objects.iter());
        let left = agg.stats_of(objects.iter().take(split));
        let right = agg.stats_of(objects.iter().skip(split));
        for ((a, l), r) in all.iter().zip(&left).zip(&right) {
            prop_assert!((a - (l + r)).abs() < 1e-9);
        }
    }

    #[test]
    fn feature_bounds_are_sound_for_random_supersets(
        mandatory in prop::collection::vec(arb_object(), 0..10),
        optional in prop::collection::vec(arb_object(), 0..8),
        mask in 0u32..256,
    ) {
        let agg = aggregator();
        let lower_stats = agg.stats_of(mandatory.iter());
        let upper_stats = agg.stats_of(mandatory.iter().chain(optional.iter()));
        let (lo, hi) = agg.feature_bounds(&lower_stats, &upper_stats);
        // Pick an arbitrary admissible subset via the mask.
        let chosen: Vec<&SpatialObject> = mandatory
            .iter()
            .chain(
                optional
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << (i % 32)) != 0)
                    .map(|(_, o)| o),
            )
            .collect();
        let rep = agg.aggregate(chosen.into_iter());
        for d in 0..agg.feature_dim() {
            prop_assert!(
                lo[d] - 1e-9 <= rep[d] && rep[d] <= hi[d] + 1e-9,
                "dimension {} value {} escapes bounds [{}, {}]",
                d, rep[d], lo[d], hi[d]
            );
        }
    }

    #[test]
    fn lower_bound_never_exceeds_distance_of_admissible_sets(
        mandatory in prop::collection::vec(arb_object(), 0..8),
        optional in prop::collection::vec(arb_object(), 0..6),
        query_objects in prop::collection::vec(arb_object(), 0..10),
        mask in 0u32..64,
    ) {
        let agg = aggregator();
        let query = agg.aggregate(query_objects.iter());
        let weights = Weights::uniform(agg.feature_dim());
        let lower_stats = agg.stats_of(mandatory.iter());
        let upper_stats = agg.stats_of(mandatory.iter().chain(optional.iter()));
        for metric in [DistanceMetric::L1, DistanceMetric::L2] {
            let lb = agg.lower_bound_distance(&query, &lower_stats, &upper_stats, &weights, metric);
            let chosen: Vec<&SpatialObject> = mandatory
                .iter()
                .chain(
                    optional
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << (i % 32)) != 0)
                        .map(|(_, o)| o),
                )
                .collect();
            let rep = agg.aggregate(chosen.into_iter());
            let d = weighted_distance(&rep, &query, &weights, metric);
            prop_assert!(lb <= d + 1e-9, "lb {lb} exceeds distance {d} under {metric:?}");
        }
    }

    #[test]
    fn distance_metric_axioms(
        a in prop::collection::vec(-50.0..50.0f64, 1..12),
        b_seed in prop::collection::vec(-50.0..50.0f64, 1..12),
    ) {
        let dim = a.len().min(b_seed.len());
        let a = &a[..dim];
        let b = &b_seed[..dim];
        let w = vec![1.0; dim];
        for metric in [DistanceMetric::L1, DistanceMetric::L2] {
            let dab = weighted_distance(a, b, &w, metric);
            let dba = weighted_distance(b, a, &w, metric);
            prop_assert!((dab - dba).abs() < 1e-9, "symmetry");
            prop_assert!(dab >= 0.0, "non-negativity");
            prop_assert!(weighted_distance(a, a, &w, metric).abs() < 1e-12, "identity");
        }
    }

    #[test]
    fn lower_bound_is_tight_when_bounds_collapse(
        v in prop::collection::vec(-10.0..10.0f64, 1..8),
        q in prop::collection::vec(-10.0..10.0f64, 1..8),
    ) {
        let dim = v.len().min(q.len());
        let v = &v[..dim];
        let q = &q[..dim];
        let w = vec![1.0; dim];
        for metric in [DistanceMetric::L1, DistanceMetric::L2] {
            let lb = distance_lower_bound(q, v, v, &w, metric);
            let d = weighted_distance(q, v, &w, metric);
            prop_assert!((lb - d).abs() < 1e-9);
        }
    }
}
