//! Baseline algorithms for the ASRS reproduction.
//!
//! The paper evaluates DS-Search against two baselines:
//!
//! * **Base** — a sweep-line algorithm adapted from the MaxRS / BRS
//!   literature \[11, 21\] that enumerates every disjoint region of the
//!   reduced ASP instance (Section 4.1).  Its complexity is `O(n²)` in the
//!   number of objects.  Implemented in [`SweepBase`].
//! * **OE (Optimal Enclosure)** — the `O(n log n)` sweep-line algorithm for
//!   the MaxRS problem, built on a segment tree with range-add /
//!   range-maximum operations.  Implemented in [`OptimalEnclosure`], with
//!   the segment tree exposed as [`segment_tree::MaxAddSegmentTree`].
//!
//! In addition, [`naive`] provides an exhaustive arrangement-midpoint
//! oracle used as ground truth by the test-suite: it evaluates one probe
//! point per cell of the full rectangle arrangement, which is exact but
//! cubic in the number of objects.
//!
//! [`SweepBase`] implements the engine's
//! [`SearchAlgorithm`](asrs_core::SearchAlgorithm) trait, so it plugs into
//! [`AsrsEngine::search_with`](asrs_core::AsrsEngine::search_with) as an
//! interchangeable backend next to DS-Search, GI-DS and the naive oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod maxrs_oe;
pub mod naive;
pub mod segment_tree;
mod sweep;

pub use maxrs_oe::{MaxRsOutcome, OptimalEnclosure};
pub use sweep::SweepBase;
