//! The Optimal Enclosure (OE) sweep-line algorithm for MaxRS.
//!
//! OE is the `O(n log n)` state-of-the-art exact algorithm the paper
//! compares against in Section 7.5.  It sweeps the reduced ASP rectangles
//! left-to-right; a segment tree over the compressed y-intervals maintains,
//! for the current slab, how many rectangles cover each elementary
//! y-interval.  The largest count observed over the whole sweep is the
//! MaxRS optimum, and the slab/interval where it was observed yields an
//! optimal region.

use crate::segment_tree::MaxAddSegmentTree;
use asrs_core::asp::AspInstance;
use asrs_core::AsrsError;
use asrs_data::Dataset;
use asrs_geo::{Point, Rect, RegionSize};
use std::time::{Duration, Instant};

/// Result of an OE MaxRS run.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxRsOutcome {
    /// The region enclosing the maximum number of objects.
    pub region: Rect,
    /// Bottom-left corner of the region.
    pub anchor: Point,
    /// Number of objects strictly inside the region.
    pub count: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// The Optimal Enclosure solver.
pub struct OptimalEnclosure<'a> {
    dataset: &'a Dataset,
    size: RegionSize,
}

impl<'a> OptimalEnclosure<'a> {
    /// Creates a solver for regions of the given size.
    pub fn new(dataset: &'a Dataset, size: RegionSize) -> Self {
        Self { dataset, size }
    }

    /// Runs the sweep and returns the optimal region.
    ///
    /// # Errors
    ///
    /// [`AsrsError::InvalidRegionSize`] when the region size is
    /// non-positive or non-finite.
    pub fn search(&self) -> Result<MaxRsOutcome, AsrsError> {
        if !self.size.is_valid() {
            return Err(AsrsError::InvalidRegionSize {
                width: self.size.width,
                height: self.size.height,
            });
        }
        let started = Instant::now();
        let asp = AspInstance::build(self.dataset, self.size, None, 1e-12);
        if asp.rects().is_empty() {
            let anchor = Point::origin();
            return Ok(MaxRsOutcome {
                region: Rect::from_bottom_left(anchor, self.size),
                anchor,
                count: 0,
                elapsed: started.elapsed(),
            });
        }

        // Compress the y coordinates of horizontal edges.
        let mut ys: Vec<f64> = asp
            .rects()
            .iter()
            .flat_map(|r| [r.rect.min_y, r.rect.max_y])
            .collect();
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        ys.dedup();
        let slot_of = |y: f64| -> usize {
            ys.binary_search_by(|v| v.partial_cmp(&y).expect("finite coordinates"))
                .expect("edge coordinate must be present")
        };
        let slots = (ys.len() - 1).max(1);
        let mut tree = MaxAddSegmentTree::new(slots);

        // Sweep events over the distinct x coordinates.
        let mut xs: Vec<f64> = asp
            .rects()
            .iter()
            .flat_map(|r| [r.rect.min_x, r.rect.max_x])
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        xs.dedup();

        // Bucket rectangle starts and ends per x coordinate.
        let x_slot = |x: f64| -> usize {
            xs.binary_search_by(|v| v.partial_cmp(&x).expect("finite coordinates"))
                .expect("edge coordinate must be present")
        };
        let mut starts: Vec<Vec<usize>> = vec![Vec::new(); xs.len()];
        let mut ends: Vec<Vec<usize>> = vec![Vec::new(); xs.len()];
        for (i, r) in asp.rects().iter().enumerate() {
            starts[x_slot(r.rect.min_x)].push(i);
            ends[x_slot(r.rect.max_x)].push(i);
        }

        let mut best_count = 0.0f64;
        let mut best_slab = 0usize;
        let mut best_slot = 0usize;
        for (xi, _) in xs.iter().enumerate() {
            // Rectangles ending here no longer cover the slab to the right.
            for &ri in &ends[xi] {
                let r = &asp.rects()[ri].rect;
                tree.range_add(slot_of(r.min_y), slot_of(r.max_y), -1.0);
            }
            // Rectangles starting here cover the slab to the right.
            for &ri in &starts[xi] {
                let r = &asp.rects()[ri].rect;
                tree.range_add(slot_of(r.min_y), slot_of(r.max_y), 1.0);
            }
            if xi + 1 == xs.len() {
                break;
            }
            let (max, slot) = tree.global_max();
            if max > best_count {
                best_count = max;
                best_slab = xi;
                best_slot = slot;
            }
        }

        let anchor = Point::new(
            (xs[best_slab] + xs[best_slab + 1]) / 2.0,
            (ys[best_slot] + ys[(best_slot + 1).min(ys.len() - 1)]) / 2.0,
        );
        let region = Rect::from_bottom_left(anchor, self.size);
        // Recount exactly: immune to any floating-point drift in the tree.
        let count = self.dataset.count_strictly_in(&region);
        debug_assert_eq!(count, best_count as usize);
        Ok(MaxRsOutcome {
            region,
            anchor,
            count,
            elapsed: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_maxrs_count;
    use asrs_data::gen::UniformGenerator;
    use asrs_data::{DatasetBuilder, Schema};

    #[test]
    fn finds_a_dense_cluster() {
        let mut b = DatasetBuilder::new(Schema::empty());
        for (x, y) in [(5.0, 5.0), (5.2, 5.1), (5.4, 5.3), (5.1, 5.6), (30.0, 30.0)] {
            b.push(x, y, vec![]);
        }
        let ds = b.build().unwrap();
        let outcome = OptimalEnclosure::new(&ds, RegionSize::new(1.0, 1.0))
            .search()
            .unwrap();
        assert_eq!(outcome.count, 4);
        assert_eq!(ds.count_strictly_in(&outcome.region), 4);
    }

    #[test]
    fn agrees_with_the_naive_oracle() {
        for seed in 0..6 {
            let ds = UniformGenerator::default().generate(60, seed);
            let outcome = OptimalEnclosure::new(&ds, RegionSize::new(12.0, 10.0))
                .search()
                .unwrap();
            let oracle = naive_maxrs_count(&ds, 12.0, 10.0).unwrap();
            assert_eq!(outcome.count, oracle, "seed {seed}");
        }
    }

    #[test]
    fn empty_dataset_returns_zero() {
        let ds = Dataset::new_unchecked(Schema::empty(), vec![]);
        let outcome = OptimalEnclosure::new(&ds, RegionSize::new(2.0, 2.0))
            .search()
            .unwrap();
        assert_eq!(outcome.count, 0);
    }

    #[test]
    fn single_object() {
        let mut b = DatasetBuilder::new(Schema::empty());
        b.push(1.0, 1.0, vec![]);
        let ds = b.build().unwrap();
        let outcome = OptimalEnclosure::new(&ds, RegionSize::new(3.0, 3.0))
            .search()
            .unwrap();
        assert_eq!(outcome.count, 1);
        assert!(outcome
            .region
            .strictly_contains_point(&Point::new(1.0, 1.0)));
    }

    #[test]
    fn anchor_is_region_bottom_left() {
        let ds = UniformGenerator::default().generate(80, 3);
        let outcome = OptimalEnclosure::new(&ds, RegionSize::new(10.0, 10.0))
            .search()
            .unwrap();
        assert_eq!(outcome.region.bottom_left(), outcome.anchor);
        assert!(outcome.count >= 1);
    }
}
