//! The sweep-line baseline `Base` for the ASRS problem (Section 4.1).
//!
//! The baseline works on the reduced ASP instance.  A vertical sweep line
//! moves across the distinct x coordinates of rectangle edges; between two
//! consecutive coordinates the set of active rectangles is fixed, and the
//! active rectangles' horizontal edges divide the sweep line into intervals
//! whose covering sets are fixed as well (these intervals are exactly the
//! disjoint regions of Lemma 2 restricted to the slab).  Every interval is
//! evaluated, giving the exact optimum in `O(n²)` interval evaluations —
//! the complexity the paper reports for the baseline.

use asrs_aggregator::{CompositeAggregator, FeatureVector};
use asrs_core::asp::AspInstance;
use asrs_core::{AsrsError, AsrsQuery, SearchAlgorithm, SearchResult, SearchStats};
use asrs_data::Dataset;
use asrs_geo::{Point, Rect};
use std::time::{Duration, Instant};

/// Result of a baseline search.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineAnswer {
    /// Bottom-left corner of the best region found.
    pub anchor: Point,
    /// The best region.
    pub region: Rect,
    /// Its distance to the query representation.
    pub distance: f64,
    /// Its aggregate representation.
    pub representation: FeatureVector,
    /// Number of (slab, interval) candidates evaluated.
    pub candidates_evaluated: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

/// The sweep-line baseline solver.
pub struct SweepBase<'a> {
    dataset: &'a Dataset,
    aggregator: &'a CompositeAggregator,
}

impl<'a> SweepBase<'a> {
    /// Creates a baseline solver.
    pub fn new(dataset: &'a Dataset, aggregator: &'a CompositeAggregator) -> Self {
        Self {
            dataset,
            aggregator,
        }
    }

    /// Solves the ASRS problem exactly with the sweep-line algorithm.
    ///
    /// # Errors
    ///
    /// [`AsrsError::Query`] when the query does not match the aggregator.
    pub fn search(&self, query: &AsrsQuery) -> Result<BaselineAnswer, AsrsError> {
        query.validate(self.aggregator)?;
        let started = Instant::now();
        let asp = AspInstance::build(self.dataset, query.size, None, 1e-12);
        let dims = self.aggregator.stats_dim();

        // Empty-region candidate: a point outside every rectangle.
        let far = match asp.space() {
            Some(space) => Point::new(
                space.max_x + query.size.width,
                space.max_y + query.size.height,
            ),
            None => Point::origin(),
        };
        let zero_rep = self.aggregator.stats_to_features(&vec![0.0; dims]);
        let mut best_distance =
            self.aggregator
                .distance(&zero_rep, &query.target, &query.weights, query.metric);
        let mut best_anchor = far;
        let mut best_rep = zero_rep;
        let mut candidates_evaluated = 0u64;

        if !asp.rects().is_empty() {
            // Distinct x coordinates of vertical edges, in increasing order.
            let mut xs: Vec<f64> = asp
                .rects()
                .iter()
                .flat_map(|r| [r.rect.min_x, r.rect.max_x])
                .collect();
            xs.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
            xs.dedup();

            // Pre-computed statistics contribution of every rectangle.
            let mut contribs: Vec<Vec<f64>> = Vec::with_capacity(asp.rects().len());
            for r in asp.rects() {
                let mut c = vec![0.0; dims];
                self.aggregator
                    .accumulate_object(self.dataset.object(r.object_idx as usize), &mut c);
                contribs.push(c);
            }

            for w in xs.windows(2) {
                let (x_lo, x_hi) = (w[0], w[1]);
                let slab_mid_x = (x_lo + x_hi) / 2.0;
                // Active rectangles cover the whole open slab (x_lo, x_hi).
                let active: Vec<usize> = asp
                    .rects()
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.rect.min_x <= x_lo && r.rect.max_x >= x_hi)
                    .map(|(i, _)| i)
                    .collect();
                if active.is_empty() {
                    continue;
                }
                // Vertical sweep within the slab: events at the horizontal
                // edges of the active rectangles.
                let mut events: Vec<(f64, bool, usize)> = Vec::with_capacity(active.len() * 2);
                for &i in &active {
                    let r = &asp.rects()[i].rect;
                    events.push((r.min_y, true, i));
                    events.push((r.max_y, false, i));
                }
                events.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("finite coordinates")
                        .then_with(|| b.1.cmp(&a.1))
                });

                let mut running = vec![0.0; dims];
                let mut cover = 0usize;
                let mut idx = 0usize;
                while idx < events.len() {
                    let y = events[idx].0;
                    // Apply every event at this y: closings first (they were
                    // sorted so that removals at equal y come after
                    // additions; order within a single y does not matter
                    // because the interval evaluated next starts at y).
                    while idx < events.len() && events[idx].0 == y {
                        let (_, is_start, rect_idx) = events[idx];
                        let c = &contribs[rect_idx];
                        if is_start {
                            for (slot, v) in running.iter_mut().zip(c) {
                                *slot += v;
                            }
                            cover += 1;
                        } else {
                            for (slot, v) in running.iter_mut().zip(c) {
                                *slot -= v;
                            }
                            cover -= 1;
                        }
                        idx += 1;
                    }
                    if cover == 0 {
                        continue;
                    }
                    // The interval from this y to the next event has a fixed
                    // covering set; evaluate its midpoint.
                    let next_y = events[idx].0;
                    if next_y <= y {
                        continue;
                    }
                    candidates_evaluated += 1;
                    let rep = self.aggregator.stats_to_features(&running);
                    let d =
                        self.aggregator
                            .distance(&rep, &query.target, &query.weights, query.metric);
                    if d < best_distance {
                        best_distance = d;
                        best_anchor = Point::new(slab_mid_x, (y + next_y) / 2.0);
                        best_rep = rep;
                    }
                }
            }
        }

        Ok(BaselineAnswer {
            anchor: best_anchor,
            region: Rect::from_bottom_left(best_anchor, query.size),
            distance: best_distance,
            representation: best_rep,
            candidates_evaluated,
            elapsed: started.elapsed(),
        })
    }
}

impl SearchAlgorithm for SweepBase<'_> {
    fn name(&self) -> &str {
        "sweep-base"
    }

    fn search(&self, query: &AsrsQuery) -> Result<SearchResult, AsrsError> {
        let answer = SweepBase::search(self, query)?;
        let stats = SearchStats {
            rectangles: self.dataset.len() as u64,
            fallback_points: answer.candidates_evaluated,
            elapsed: answer.elapsed,
            ..SearchStats::default()
        };
        Ok(SearchResult::new(
            answer.anchor,
            answer.region,
            answer.distance,
            answer.representation,
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_best_region;
    use asrs_aggregator::{FeatureVector, Selection, Weights};
    use asrs_data::gen::UniformGenerator;
    use asrs_data::{AttrValue, AttributeDef, AttributeKind, DatasetBuilder, Schema};
    use asrs_geo::RegionSize;

    fn colored_dataset() -> Dataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "color",
            AttributeKind::categorical(2),
        )]);
        let mut b = DatasetBuilder::new(schema);
        b.push(2.0, 8.0, vec![AttrValue::Cat(0)]);
        b.push(3.5, 7.0, vec![AttrValue::Cat(1)]);
        b.push(1.5, 3.0, vec![AttrValue::Cat(1)]);
        b.push(5.0, 2.0, vec![AttrValue::Cat(0)]);
        b.push(7.5, 2.5, vec![AttrValue::Cat(1)]);
        b.push(8.0, 1.5, vec![AttrValue::Cat(0)]);
        b.build().unwrap()
    }

    #[test]
    fn sweep_finds_the_perfect_region_in_the_fig2_instance() {
        let ds = colored_dataset();
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("color", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(3.0, 3.0),
            FeatureVector::new(vec![1.0, 1.0]),
            Weights::uniform(2),
        );
        let ans = SweepBase::new(&ds, &agg).search(&query).unwrap();
        assert!(ans.distance.abs() < 1e-9);
        assert_eq!(
            agg.aggregate_region(&ds, &ans.region).as_slice(),
            &[1.0, 1.0]
        );
        assert!(ans.candidates_evaluated > 0);
    }

    #[test]
    fn sweep_agrees_with_the_naive_oracle_on_random_data() {
        for seed in 0..5 {
            let ds = UniformGenerator::default().generate(40, seed);
            let agg = CompositeAggregator::builder(ds.schema())
                .distribution("category", Selection::All)
                .build()
                .unwrap();
            let query = AsrsQuery::new(
                RegionSize::new(18.0, 14.0),
                FeatureVector::new(vec![2.0, 1.0, 3.0, 0.0]),
                Weights::uniform(4),
            );
            let sweep = SweepBase::new(&ds, &agg).search(&query).unwrap();
            let oracle = naive_best_region(&ds, &agg, &query).unwrap();
            assert!(
                (sweep.distance - oracle.distance).abs() < 1e-9,
                "seed {seed}: sweep {} vs oracle {}",
                sweep.distance,
                oracle.distance
            );
        }
    }

    #[test]
    fn sweep_reports_consistent_representation() {
        let ds = UniformGenerator::default().generate(60, 9);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(25.0, 20.0),
            FeatureVector::new(vec![1.0, 1.0, 1.0, 1.0]),
            Weights::uniform(4),
        );
        let ans = SweepBase::new(&ds, &agg).search(&query).unwrap();
        let direct = agg.aggregate_region(&ds, &ans.region);
        assert_eq!(direct, ans.representation);
        let d = agg.distance(&direct, &query.target, &query.weights, query.metric);
        assert!((d - ans.distance).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_is_handled() {
        let ds = Dataset::new_unchecked(Schema::empty(), vec![]);
        let agg = CompositeAggregator::builder(ds.schema())
            .count(Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(1.0, 1.0),
            FeatureVector::new(vec![5.0]),
            Weights::uniform(1),
        );
        let ans = SweepBase::new(&ds, &agg).search(&query).unwrap();
        assert_eq!(ans.distance, 5.0);
        assert_eq!(ans.candidates_evaluated, 0);
    }
}
