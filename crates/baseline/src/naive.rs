//! Exhaustive arrangement-midpoint oracle.
//!
//! The actual enumeration lives in `asrs-core` as
//! [`asrs_core::NaiveSearch`] (the engine's
//! [`Strategy::Naive`](asrs_core::Strategy) backend); this module keeps
//! the historical free-function entry points the test-suite uses, as thin
//! wrappers over it.
//!
//! The cost is `O(n²)` probe points, each evaluated in `O(n)` — far too
//! slow for benchmarks, but an unimpeachable ground truth for correctness
//! tests of DS-Search, GI-DS and the sweep-line baseline.

use asrs_aggregator::CompositeAggregator;
use asrs_core::{AsrsError, AsrsQuery, NaiveSearch};
use asrs_data::Dataset;
use asrs_geo::{Point, Rect};

/// The oracle's answer: the best probe point, its region, distance and
/// representation.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveAnswer {
    /// Best probe point (bottom-left corner of the best region).
    pub anchor: Point,
    /// The corresponding region.
    pub region: Rect,
    /// Its distance to the query representation.
    pub distance: f64,
    /// Number of probe points evaluated.
    pub probes: usize,
}

/// Computes the exact optimum by exhaustive enumeration of arrangement
/// cells.  Intended for small instances (≲ 200 objects).
///
/// # Errors
///
/// [`AsrsError::Query`] when the query does not match the aggregator.
pub fn naive_best_region(
    dataset: &Dataset,
    aggregator: &CompositeAggregator,
    query: &AsrsQuery,
) -> Result<NaiveAnswer, AsrsError> {
    let result = NaiveSearch::new(dataset, aggregator).search(query)?;
    Ok(NaiveAnswer {
        anchor: result.anchor,
        region: result.region,
        distance: result.distance,
        probes: result.stats.fallback_points as usize,
    })
}

/// Exhaustively computes the maximum number of objects any `a × b` region
/// can strictly enclose (naive MaxRS ground truth).
///
/// # Errors
///
/// [`AsrsError::Query`] when the size is degenerate.
pub fn naive_maxrs_count(dataset: &Dataset, width: f64, height: f64) -> Result<usize, AsrsError> {
    use asrs_aggregator::{FeatureVector, Selection, Weights};
    use asrs_geo::RegionSize;
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .count(Selection::All)
        .build()
        .expect("count aggregator always builds");
    let query = AsrsQuery::new(
        RegionSize::new(width, height),
        FeatureVector::new(vec![dataset.len() as f64 + 1.0]),
        Weights::uniform(1),
    );
    let answer = naive_best_region(dataset, &aggregator, &query)?;
    Ok(dataset.count_strictly_in(&answer.region))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_aggregator::{FeatureVector, Selection, Weights};
    use asrs_data::{AttrValue, AttributeDef, AttributeKind, DatasetBuilder, Schema};
    use asrs_geo::RegionSize;

    fn colored_dataset() -> Dataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "color",
            AttributeKind::categorical(2),
        )]);
        let mut b = DatasetBuilder::new(schema);
        b.push(2.0, 8.0, vec![AttrValue::Cat(0)]);
        b.push(3.5, 7.0, vec![AttrValue::Cat(1)]);
        b.push(1.5, 3.0, vec![AttrValue::Cat(1)]);
        b.push(5.0, 2.0, vec![AttrValue::Cat(0)]);
        b.push(7.5, 2.5, vec![AttrValue::Cat(1)]);
        b.push(8.0, 1.5, vec![AttrValue::Cat(0)]);
        b.build().unwrap()
    }

    #[test]
    fn finds_the_perfect_region_in_the_fig2_instance() {
        let ds = colored_dataset();
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("color", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(3.0, 3.0),
            FeatureVector::new(vec![1.0, 1.0]),
            Weights::uniform(2),
        );
        let ans = naive_best_region(&ds, &agg, &query).unwrap();
        assert!(ans.distance.abs() < 1e-9);
        let rep = agg.aggregate_region(&ds, &ans.region);
        assert_eq!(rep.as_slice(), &[1.0, 1.0]);
        assert!(ans.probes > 0);
    }

    #[test]
    fn zero_target_prefers_an_empty_region() {
        let ds = colored_dataset();
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("color", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(2.0, 2.0),
            FeatureVector::new(vec![0.0, 0.0]),
            Weights::uniform(2),
        );
        let ans = naive_best_region(&ds, &agg, &query).unwrap();
        assert_eq!(ans.distance, 0.0);
        assert_eq!(ds.count_strictly_in(&ans.region), 0);
    }

    #[test]
    fn naive_maxrs_counts_the_densest_region() {
        let mut b = DatasetBuilder::new(Schema::empty());
        for (x, y) in [(0.0, 0.0), (0.5, 0.5), (0.8, 0.2), (5.0, 5.0), (9.0, 9.0)] {
            b.push(x, y, vec![]);
        }
        let ds = b.build().unwrap();
        assert_eq!(naive_maxrs_count(&ds, 2.0, 2.0).unwrap(), 3);
        assert_eq!(naive_maxrs_count(&ds, 0.1, 0.1).unwrap(), 1);
    }

    #[test]
    fn empty_dataset_returns_empty_answer() {
        let ds = Dataset::new_unchecked(Schema::empty(), vec![]);
        let agg = CompositeAggregator::builder(ds.schema())
            .count(Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(1.0, 1.0),
            FeatureVector::new(vec![2.0]),
            Weights::uniform(1),
        );
        let ans = naive_best_region(&ds, &agg, &query).unwrap();
        assert_eq!(ans.distance, 2.0);
    }

    #[test]
    fn mismatched_query_is_an_error() {
        let ds = colored_dataset();
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("color", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(3.0, 3.0),
            FeatureVector::new(vec![1.0]),
            Weights::uniform(1),
        );
        assert!(matches!(
            naive_best_region(&ds, &agg, &query),
            Err(AsrsError::Query(_))
        ));
    }
}
