//! Exhaustive arrangement-midpoint oracle.
//!
//! The edges of the ASP rectangles partition the plane into an arrangement
//! of axis-aligned cells; every disjoint region of the paper (Lemma 2) is a
//! union of such cells, so evaluating one probe point per arrangement cell
//! visits every disjoint region.  The oracle does exactly that: it takes
//! the midpoints between consecutive distinct edge coordinates (plus one
//! point outside everything) and evaluates every `(x, y)` combination.
//!
//! The cost is `O(n²)` probe points, each evaluated in `O(n)` — far too
//! slow for benchmarks, but an unimpeachable ground truth for correctness
//! tests of DS-Search, GI-DS and the sweep-line baseline.

use asrs_aggregator::CompositeAggregator;
use asrs_core::asp::AspInstance;
use asrs_core::AsrsQuery;
use asrs_data::Dataset;
use asrs_geo::{Point, Rect};

/// The oracle's answer: the best probe point, its region, distance and
/// representation.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveAnswer {
    /// Best probe point (bottom-left corner of the best region).
    pub anchor: Point,
    /// The corresponding region.
    pub region: Rect,
    /// Its distance to the query representation.
    pub distance: f64,
    /// Number of probe points evaluated.
    pub probes: usize,
}

/// Computes the exact optimum by exhaustive enumeration of arrangement
/// cells.  Intended for small instances (≲ 200 objects).
pub fn naive_best_region(
    dataset: &Dataset,
    aggregator: &CompositeAggregator,
    query: &AsrsQuery,
) -> NaiveAnswer {
    let asp = AspInstance::build(dataset, query.size, None, 1e-12);
    // Coordinates of all vertical / horizontal edges.
    let mut xs: Vec<f64> = Vec::with_capacity(asp.rects().len() * 2 + 2);
    let mut ys: Vec<f64> = Vec::with_capacity(asp.rects().len() * 2 + 2);
    for r in asp.rects() {
        xs.push(r.rect.min_x);
        xs.push(r.rect.max_x);
        ys.push(r.rect.min_y);
        ys.push(r.rect.max_y);
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
    xs.dedup();
    ys.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
    ys.dedup();

    // Probe abscissae: midpoints of consecutive distinct coordinates plus a
    // point beyond the last edge (covering the "outside everything" case).
    let probes_axis = |coords: &[f64]| -> Vec<f64> {
        let mut probes = Vec::with_capacity(coords.len() + 1);
        for w in coords.windows(2) {
            probes.push((w[0] + w[1]) / 2.0);
        }
        match coords.last() {
            Some(last) => probes.push(last + 1.0),
            None => probes.push(0.0),
        }
        probes
    };
    let px = probes_axis(&xs);
    let py = probes_axis(&ys);

    let candidates = asp.all_rect_indices();
    let mut best_anchor = Point::new(
        xs.last().copied().unwrap_or(0.0) + query.size.width,
        ys.last().copied().unwrap_or(0.0) + query.size.height,
    );
    let mut best_distance = f64::INFINITY;
    let mut probes = 0usize;
    for &x in &px {
        for &y in &py {
            probes += 1;
            let p = Point::new(x, y);
            let objects = asp.objects_covering(&p, &candidates);
            let rep = aggregator.aggregate(objects.iter().map(|&i| dataset.object(i as usize)));
            let d = aggregator.distance(&rep, &query.target, &query.weights, query.metric);
            if d < best_distance {
                best_distance = d;
                best_anchor = p;
            }
        }
    }

    NaiveAnswer {
        anchor: best_anchor,
        region: Rect::from_bottom_left(best_anchor, query.size),
        distance: best_distance,
        probes,
    }
}

/// Exhaustively computes the maximum number of objects any `a × b` region
/// can strictly enclose (naive MaxRS ground truth).
pub fn naive_maxrs_count(dataset: &Dataset, width: f64, height: f64) -> usize {
    use asrs_aggregator::{FeatureVector, Selection, Weights};
    use asrs_geo::RegionSize;
    let aggregator = CompositeAggregator::builder(dataset.schema())
        .count(Selection::All)
        .build()
        .expect("count aggregator always builds");
    let query = AsrsQuery::new(
        RegionSize::new(width, height),
        FeatureVector::new(vec![dataset.len() as f64 + 1.0]),
        Weights::uniform(1),
    );
    let answer = naive_best_region(dataset, &aggregator, &query);
    dataset.count_strictly_in(&answer.region)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asrs_aggregator::{FeatureVector, Selection, Weights};
    use asrs_data::{AttrValue, AttributeDef, AttributeKind, DatasetBuilder, Schema};
    use asrs_geo::RegionSize;

    fn colored_dataset() -> Dataset {
        let schema = Schema::new(vec![AttributeDef::new(
            "color",
            AttributeKind::categorical(2),
        )]);
        let mut b = DatasetBuilder::new(schema);
        b.push(2.0, 8.0, vec![AttrValue::Cat(0)]);
        b.push(3.5, 7.0, vec![AttrValue::Cat(1)]);
        b.push(1.5, 3.0, vec![AttrValue::Cat(1)]);
        b.push(5.0, 2.0, vec![AttrValue::Cat(0)]);
        b.push(7.5, 2.5, vec![AttrValue::Cat(1)]);
        b.push(8.0, 1.5, vec![AttrValue::Cat(0)]);
        b.build().unwrap()
    }

    #[test]
    fn finds_the_perfect_region_in_the_fig2_instance() {
        let ds = colored_dataset();
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("color", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(3.0, 3.0),
            FeatureVector::new(vec![1.0, 1.0]),
            Weights::uniform(2),
        );
        let ans = naive_best_region(&ds, &agg, &query);
        assert!(ans.distance.abs() < 1e-9);
        let rep = agg.aggregate_region(&ds, &ans.region);
        assert_eq!(rep.as_slice(), &[1.0, 1.0]);
        assert!(ans.probes > 0);
    }

    #[test]
    fn zero_target_prefers_an_empty_region() {
        let ds = colored_dataset();
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("color", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(2.0, 2.0),
            FeatureVector::new(vec![0.0, 0.0]),
            Weights::uniform(2),
        );
        let ans = naive_best_region(&ds, &agg, &query);
        assert_eq!(ans.distance, 0.0);
        assert_eq!(ds.count_strictly_in(&ans.region), 0);
    }

    #[test]
    fn naive_maxrs_counts_the_densest_region() {
        let mut b = DatasetBuilder::new(Schema::empty());
        for (x, y) in [(0.0, 0.0), (0.5, 0.5), (0.8, 0.2), (5.0, 5.0), (9.0, 9.0)] {
            b.push(x, y, vec![]);
        }
        let ds = b.build().unwrap();
        assert_eq!(naive_maxrs_count(&ds, 2.0, 2.0), 3);
        assert_eq!(naive_maxrs_count(&ds, 0.1, 0.1), 1);
    }

    #[test]
    fn empty_dataset_returns_empty_answer() {
        let ds = Dataset::new_unchecked(Schema::empty(), vec![]);
        let agg = CompositeAggregator::builder(ds.schema())
            .count(Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(1.0, 1.0),
            FeatureVector::new(vec![2.0]),
            Weights::uniform(1),
        );
        let ans = naive_best_region(&ds, &agg, &query);
        assert_eq!(ans.distance, 2.0);
    }
}
