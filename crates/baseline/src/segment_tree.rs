//! A segment tree with lazy range addition and range/global maximum
//! queries.
//!
//! This is the data-structure substrate of the Optimal Enclosure (OE)
//! sweep-line algorithm for MaxRS \[21, 5\]: the elementary y-intervals of
//! the rectangle arrangement are the leaves; every rectangle start event
//! adds +1 over the leaves its y-extent covers and every end event adds −1;
//! the global maximum tracks the best coverage count seen so far.

/// Segment tree over `n` leaves supporting `range_add` and maximum queries
/// with argmax recovery.
#[derive(Debug, Clone)]
pub struct MaxAddSegmentTree {
    n: usize,
    /// Max value within the node's range (including pending lazy additions
    /// of ancestors *not* yet applied — the invariant is that `max[node]`
    /// is correct relative to its own subtree's lazy values).
    max: Vec<f64>,
    /// Index of a leaf attaining the maximum within the node's range.
    argmax: Vec<usize>,
    /// Pending addition to every leaf of the node's range.
    lazy: Vec<f64>,
}

impl MaxAddSegmentTree {
    /// Creates a tree over `n` leaves, all initialised to zero.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "segment tree needs at least one leaf");
        let size = 4 * n;
        let mut tree = Self {
            n,
            max: vec![0.0; size],
            argmax: vec![0; size],
            lazy: vec![0.0; size],
        };
        tree.build(1, 0, n - 1);
        tree
    }

    fn build(&mut self, node: usize, lo: usize, hi: usize) {
        self.argmax[node] = lo;
        if lo == hi {
            return;
        }
        let mid = (lo + hi) / 2;
        self.build(2 * node, lo, mid);
        self.build(2 * node + 1, mid + 1, hi);
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when the tree has no leaves (never true — kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `delta` to every leaf in the half-open range `[l, r)`.
    pub fn range_add(&mut self, l: usize, r: usize, delta: f64) {
        if l >= r || l >= self.n {
            return;
        }
        let r = r.min(self.n);
        self.add_rec(1, 0, self.n - 1, l, r - 1, delta);
    }

    fn add_rec(&mut self, node: usize, lo: usize, hi: usize, l: usize, r: usize, delta: f64) {
        if r < lo || hi < l {
            return;
        }
        if l <= lo && hi <= r {
            self.max[node] += delta;
            self.lazy[node] += delta;
            return;
        }
        let mid = (lo + hi) / 2;
        self.add_rec(2 * node, lo, mid, l, r, delta);
        self.add_rec(2 * node + 1, mid + 1, hi, l, r, delta);
        let (left, right) = (2 * node, 2 * node + 1);
        if self.max[left] >= self.max[right] {
            self.max[node] = self.max[left] + self.lazy[node];
            self.argmax[node] = self.argmax[left];
        } else {
            self.max[node] = self.max[right] + self.lazy[node];
            self.argmax[node] = self.argmax[right];
        }
    }

    /// The global maximum and the index of a leaf attaining it.
    pub fn global_max(&self) -> (f64, usize) {
        (self.max[1], self.argmax[1])
    }

    /// The value stored at a single leaf (mainly for tests).
    pub fn leaf_value(&self, idx: usize) -> f64 {
        assert!(idx < self.n, "leaf index out of range");
        self.leaf_rec(1, 0, self.n - 1, idx)
    }

    fn leaf_rec(&self, node: usize, lo: usize, hi: usize, idx: usize) -> f64 {
        if lo == hi {
            return self.max[node];
        }
        let mid = (lo + hi) / 2;
        let child = if idx <= mid {
            self.leaf_rec(2 * node, lo, mid, idx)
        } else {
            self.leaf_rec(2 * node + 1, mid + 1, hi, idx)
        };
        child + self.lazy[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference used to validate the tree.
    struct Reference(Vec<f64>);

    impl Reference {
        fn range_add(&mut self, l: usize, r: usize, delta: f64) {
            let end = r.min(self.0.len());
            for v in &mut self.0[l..end] {
                *v += delta;
            }
        }
        fn global_max(&self) -> f64 {
            self.0.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn zero_leaves_rejected() {
        MaxAddSegmentTree::new(0);
    }

    #[test]
    fn single_leaf_tree() {
        let mut t = MaxAddSegmentTree::new(1);
        assert_eq!(t.global_max(), (0.0, 0));
        t.range_add(0, 1, 3.0);
        assert_eq!(t.global_max(), (3.0, 0));
        assert_eq!(t.leaf_value(0), 3.0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn overlapping_adds_accumulate() {
        let mut t = MaxAddSegmentTree::new(8);
        t.range_add(0, 4, 1.0);
        t.range_add(2, 6, 1.0);
        t.range_add(3, 8, 1.0);
        // Leaf 3 is covered by all three additions.
        let (max, arg) = t.global_max();
        assert_eq!(max, 3.0);
        assert_eq!(arg, 3);
        assert_eq!(t.leaf_value(3), 3.0);
        assert_eq!(t.leaf_value(0), 1.0);
        assert_eq!(t.leaf_value(7), 1.0);
    }

    #[test]
    fn negative_adds_reverse_positive_ones() {
        let mut t = MaxAddSegmentTree::new(16);
        t.range_add(4, 12, 2.0);
        t.range_add(4, 12, -2.0);
        assert_eq!(t.global_max().0, 0.0);
        for i in 0..16 {
            assert_eq!(t.leaf_value(i), 0.0);
        }
    }

    #[test]
    fn out_of_range_adds_are_ignored() {
        let mut t = MaxAddSegmentTree::new(4);
        t.range_add(3, 3, 5.0);
        t.range_add(10, 20, 5.0);
        assert_eq!(t.global_max().0, 0.0);
        t.range_add(2, 100, 1.0);
        assert_eq!(t.global_max().0, 1.0);
    }

    #[test]
    fn randomised_against_reference() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.gen_range(1..60);
            let mut tree = MaxAddSegmentTree::new(n);
            let mut reference = Reference(vec![0.0; n]);
            for _ in 0..200 {
                let l = rng.gen_range(0..n);
                let r = rng.gen_range(l..=n);
                let delta = rng.gen_range(-3i32..=3) as f64;
                tree.range_add(l, r, delta);
                reference.range_add(l, r, delta);
                let (max, arg) = tree.global_max();
                assert!((max - reference.global_max()).abs() < 1e-9);
                assert!(
                    (reference.0[arg] - max).abs() < 1e-9,
                    "argmax must attain the max"
                );
            }
        }
    }
}
