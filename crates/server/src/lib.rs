//! Serve ASRS over the wire: a dependency-free threaded HTTP/1.1 JSON
//! service over an [`EngineHandle`](asrs_core::EngineHandle).
//!
//! PR 2 made queries declarative and serializable
//! ([`QueryRequest`](asrs_core::QueryRequest) /
//! [`QueryResponse`](asrs_core::QueryResponse) round-trip through JSON);
//! this crate is the process boundary that was still missing — the piece
//! that lets the engine serve many concurrent users over sockets:
//!
//! * `POST /query` — deserializes a [`QueryRequest`](asrs_core::QueryRequest),
//!   executes it through the shared engine handle (planner, budget and
//!   query-result cache included) and returns the
//!   [`QueryResponse`](asrs_core::QueryResponse) as JSON.  Engine errors map
//!   to proper statuses: 408 for a spent
//!   [`budget`](asrs_core::QueryRequest::with_budget_ms), 400 for anything
//!   the client phrased wrong, 500 for engine-internal failures.
//! * `GET /explain` — runs the cost-based planner without executing and
//!   reports the chosen backend, the reason, and the work estimates (the
//!   request travels in the body, like `/query`).
//! * `POST /append` — appends a spatial object (optionally TTL'd via
//!   `ttl_ms`) to the live engine, returning the
//!   [`MutationReceipt`](asrs_core::MutationReceipt) with the new
//!   generation; 409 for a duplicate id, 400 for a schema violation.
//! * `DELETE /objects/{id}` — removes an object by id (404 when absent).
//! * `POST /sweep` — expires every TTL'd object whose deadline passed.
//!   A background maintenance thread also sweeps on a configurable
//!   cadence ([`ServerConfig::sweep_interval`]), so TTL'd objects expire
//!   without any client driving `/sweep`.
//! * `POST /snapshot` — persists the engine's current generation
//!   immediately when the server was started with a persistence handle
//!   ([`AsrsServer::with_persistence`]); 409 otherwise.  The maintenance
//!   thread also snapshots automatically once the write-ahead log outgrows
//!   its compaction threshold.
//! * `GET /metrics` — request counters, cache hit/miss counters, the
//!   engine generation with its mutation counters, sweeper and
//!   persistence counters, and the merged
//!   [`SearchStats`](asrs_core::SearchStats) of every query served.
//! * `GET /healthz` — liveness.
//!
//! Queries that arrive without a budget can be given a server-side one
//! ([`ServerConfig::query_deadline`]), turning pathologically slow
//! requests into 408 responses instead of pinned pool workers.
//!
//! ```no_run
//! use asrs_core::AsrsEngine;
//! use asrs_server::{AsrsServer, ServerConfig};
//! # fn engine() -> AsrsEngine { unimplemented!() }
//!
//! let engine = engine();
//! let server = AsrsServer::bind(engine.handle(), "127.0.0.1:0", ServerConfig::default())
//!     .and_then(AsrsServer::start)
//!     .unwrap();
//! println!("serving on http://{}", server.addr());
//! // ... traffic ...
//! server.shutdown();
//! ```
//!
//! The implementation is deliberately `std`-only (`TcpListener` + a bounded
//! worker pool, in the style of the engine's batch workers): no async
//! runtime to vendor, no framework to audit, and the whole serving path
//! stays debuggable with a thread dump.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod http;
mod metrics;
mod server;

pub use http::HttpClient;
pub use metrics::{CacheSnapshot, HistogramSnapshot, MetricsSnapshot, ShardsSnapshot, SweeperSnapshot};
pub use server::{status_for, AsrsServer, ServerConfig, ServerHandle};
