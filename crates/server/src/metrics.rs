//! Server-side observability: request counters plus the merged
//! [`SearchStats`] of every executed query, snapshotted by `GET /metrics`.

use asrs_core::sync::Mutex;
use asrs_core::{CacheStats, MutationReceipt, MutationStats, SearchStats};
use asrs_persist::{PersistStats, FSYNC_BUCKET_BOUNDS_US};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Upper bounds (inclusive) of the commit-batch-size histogram buckets —
/// how many mutations each published generation folded together — with an
/// implicit overflow bucket after the last bound.
const COMMIT_BATCH_BOUNDS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Live counters, updated lock-free on the request path (the merged search
/// statistics take a short mutex — they are a dozen additions).
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    requests_total: AtomicU64,
    queries_ok: AtomicU64,
    queries_client_error: AtomicU64,
    queries_server_error: AtomicU64,
    mutations_ok: AtomicU64,
    mutations_client_error: AtomicU64,
    mutations_server_error: AtomicU64,
    batch_ingests: AtomicU64,
    batch_objects: AtomicU64,
    plans_explained: AtomicU64,
    protocol_errors: AtomicU64,
    /// Commit-batch-size histogram: one bucket per
    /// [`COMMIT_BATCH_BOUNDS`] bound plus an overflow bucket.
    commit_batch_buckets: [AtomicU64; COMMIT_BATCH_BOUNDS.len() + 1],
    commit_batches: AtomicU64,
    commit_ops: AtomicU64,
    /// Newest generation already recorded in the batch histogram: a group
    /// commit hands every participating request receipts stamped with the
    /// *same* generation, and the batch must be counted once, not once
    /// per caller.
    last_commit_generation: AtomicU64,
    search: Mutex<SearchStats>,
}

impl ServerMetrics {
    pub(crate) fn new() -> Self {
        Self {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            queries_ok: AtomicU64::new(0),
            queries_client_error: AtomicU64::new(0),
            queries_server_error: AtomicU64::new(0),
            mutations_ok: AtomicU64::new(0),
            mutations_client_error: AtomicU64::new(0),
            mutations_server_error: AtomicU64::new(0),
            batch_ingests: AtomicU64::new(0),
            batch_objects: AtomicU64::new(0),
            plans_explained: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            commit_batch_buckets: Default::default(),
            commit_batches: AtomicU64::new(0),
            commit_ops: AtomicU64::new(0),
            last_commit_generation: AtomicU64::new(0),
            search: Mutex::new(SearchStats::new()),
        }
    }

    pub(crate) fn record_mutation_ok(&self) {
        self.mutations_ok.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_mutation_error(&self, status: u16) {
        if status >= 500 {
            self.mutations_server_error.fetch_add(1, Ordering::Relaxed);
        } else {
            self.mutations_client_error.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_request(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch_ingest(&self, objects: u64) {
        self.batch_ingests.fetch_add(1, Ordering::Relaxed);
        self.batch_objects.fetch_add(objects, Ordering::Relaxed);
    }

    /// Records the published commit batch behind `receipts` in the
    /// batch-size histogram, exactly once per generation: every receipt of
    /// one group commit carries the same `generation` and the same `batch`
    /// size, and concurrent callers race to claim the generation with a
    /// compare-exchange.
    pub(crate) fn record_commit(&self, receipts: &[MutationReceipt]) {
        let Some(first) = receipts.first() else {
            return;
        };
        let generation = first.generation;
        let mut seen = self.last_commit_generation.load(Ordering::Relaxed);
        loop {
            if generation <= seen {
                return;
            }
            match self.last_commit_generation.compare_exchange_weak(
                seen,
                generation,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => seen = actual,
            }
        }
        let batch = first.batch as u64;
        let slot = COMMIT_BATCH_BOUNDS
            .iter()
            .position(|&bound| batch <= bound)
            .unwrap_or(COMMIT_BATCH_BOUNDS.len());
        self.commit_batch_buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.commit_batches.fetch_add(1, Ordering::Relaxed);
        self.commit_ops.fetch_add(batch, Ordering::Relaxed);
    }

    pub(crate) fn record_query_ok(&self, stats: &SearchStats) {
        self.queries_ok.fetch_add(1, Ordering::Relaxed);
        // Metrics are plain counters; recover a poisoned lock rather than
        // let observability take the serving thread down.
        self.search
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .merge(stats);
    }

    pub(crate) fn record_query_error(&self, status: u16) {
        if status >= 500 {
            self.queries_server_error.fetch_add(1, Ordering::Relaxed);
        } else {
            self.queries_client_error.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_plan_explained(&self) {
        self.plans_explained.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time snapshot.  `cache` carries the engine's query-result
    /// cache counters when one is attached; they are also surfaced in
    /// `search.cache_hits` / `search.cache_misses`, keeping the whole
    /// search-side story in one [`SearchStats`] value.  `shard_requests`
    /// carries the engine's per-shard scattered-execution counts when the
    /// engine is sharded; `mutations` the generational engine's mutation
    /// counters (generation number included).
    pub(crate) fn snapshot(
        &self,
        cache: Option<CacheStats>,
        shard_requests: Option<Vec<u64>>,
        mutations: MutationStats,
        sweeper: Option<SweeperSnapshot>,
        persistence: Option<PersistStats>,
    ) -> MetricsSnapshot {
        let mut search = self
            .search
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let cache = cache.map(|c| {
            search.cache_hits = c.hits;
            search.cache_misses = c.misses;
            CacheSnapshot {
                hit_rate: c.hit_rate(),
                hits: c.hits,
                misses: c.misses,
                entries: c.entries as u64,
                capacity: c.capacity as u64,
                coalesced_waits: c.coalesced_waits,
                carried_forward: c.carried_forward,
                carry_proof_failures: c.carry_proof_failures,
            }
        });
        let shards = shard_requests.map(|requests| ShardsSnapshot {
            shard_count: requests.len() as u64,
            requests,
        });
        let commit_batch_sizes = HistogramSnapshot {
            bounds: COMMIT_BATCH_BOUNDS.to_vec(),
            counts: self
                .commit_batch_buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.commit_batches.load(Ordering::Relaxed),
            sum: self.commit_ops.load(Ordering::Relaxed),
        };
        let fsync_latency_us = persistence.as_ref().map(|p| HistogramSnapshot {
            bounds: FSYNC_BUCKET_BOUNDS_US.to_vec(),
            counts: p.fsync_latency_us.clone(),
            count: p.fsyncs,
            sum: p.fsync_total_us,
        });
        MetricsSnapshot {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            generation: mutations.generation,
            requests_total: self.requests_total.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_client_error: self.queries_client_error.load(Ordering::Relaxed),
            queries_server_error: self.queries_server_error.load(Ordering::Relaxed),
            mutations_ok: self.mutations_ok.load(Ordering::Relaxed),
            mutations_client_error: self.mutations_client_error.load(Ordering::Relaxed),
            mutations_server_error: self.mutations_server_error.load(Ordering::Relaxed),
            batch_ingests: self.batch_ingests.load(Ordering::Relaxed),
            batch_objects: self.batch_objects.load(Ordering::Relaxed),
            plans_explained: self.plans_explained.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            commit_batch_sizes,
            fsync_latency_us,
            cache,
            shards,
            mutations,
            sweeper,
            persistence,
            search,
        }
    }
}

/// Background maintenance-thread counters, as served by `/metrics`
/// (absent when the server runs with `sweep_interval: None`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweeperSnapshot {
    /// Configured sweep cadence in milliseconds.
    pub interval_ms: u64,
    /// Completed background sweeps.
    pub sweeps: u64,
    /// TTL'd objects expired by those sweeps.
    pub swept_objects: u64,
    /// Sweeps that failed (the engine refused the mutation).
    pub sweep_errors: u64,
    /// Timer ticks that skipped the sweep because write traffic had
    /// advanced the generation since the previous tick — application
    /// commit batches piggyback due expiries, so the timer sweep would
    /// have found nothing due.
    pub sweeps_skipped: u64,
    /// Background snapshots taken because the write-ahead log outgrew its
    /// compaction threshold.
    pub snapshots_taken: u64,
    /// Background snapshots that failed.
    pub snapshot_errors: u64,
}

/// Per-shard serving counters of a sharded engine, as served by `/metrics`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardsSnapshot {
    /// Number of shards the engine was built with.
    pub shard_count: u64,
    /// Scattered executions each shard participated in, in shard order.
    /// A shard skipped by routing (no rectangle reached its slab) is not
    /// counted, so the spread shows how evenly the partition carries load.
    pub requests: Vec<u64>,
}

/// Query-result cache counters as served by `/metrics`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CacheSnapshot {
    /// Fraction of lookups answered from the cache.
    pub hit_rate: f64,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to be computed.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Maximum entries retained.
    pub capacity: u64,
    /// Misses that blocked on another caller's identical in-flight
    /// computation and shared its result (single-flight coalescing).
    pub coalesced_waits: u64,
    /// Entries re-stamped to a successor generation because a commit
    /// batch provably could not change their answer (carry-forward).
    pub carried_forward: u64,
    /// Carry-forward attempts rejected by the byte-identity proof path.
    pub carry_proof_failures: u64,
}

/// A fixed-bucket histogram as served by `/metrics`: `counts[i]` holds the
/// observations `≤ bounds[i]`, with one trailing overflow bucket
/// (`counts.len() == bounds.len() + 1`); `count`/`sum` give totals for
/// deriving a mean.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Observations per bucket (overflow bucket last).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

/// The `GET /metrics` payload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Current engine generation (0 until the first mutation; mirrors
    /// `mutations.generation`).
    pub generation: u64,
    /// Every request routed, any endpoint.
    pub requests_total: u64,
    /// `/query` requests answered 200.
    pub queries_ok: u64,
    /// `/query` requests answered 4xx.
    pub queries_client_error: u64,
    /// `/query` requests answered 5xx.
    pub queries_server_error: u64,
    /// Mutation requests (`/append`, `/append_batch`,
    /// `DELETE /objects/{id}`, `/sweep`) answered 200.
    pub mutations_ok: u64,
    /// Mutation requests answered 4xx.
    pub mutations_client_error: u64,
    /// Mutation requests answered 5xx.
    pub mutations_server_error: u64,
    /// `/append_batch` payloads accepted (each is one atomic commit — one
    /// published generation regardless of payload size).
    pub batch_ingests: u64,
    /// Objects ingested through accepted `/append_batch` payloads.
    pub batch_objects: u64,
    /// `/explain` requests answered.
    pub plans_explained: u64,
    /// Connections dropped for malformed framing.
    pub protocol_errors: u64,
    /// Histogram of mutations folded per published generation — the
    /// group-commit amortisation factor under concurrent write load.
    pub commit_batch_sizes: HistogramSnapshot,
    /// Histogram of WAL `write + fsync` critical-section latencies in
    /// microseconds (absent without a persistence directory).
    pub fsync_latency_us: Option<HistogramSnapshot>,
    /// Engine query-result cache counters (absent without a cache).
    pub cache: Option<CacheSnapshot>,
    /// Per-shard request counters (absent on single-engine deployments).
    pub shards: Option<ShardsSnapshot>,
    /// Background maintenance-thread counters (absent when the sweeper is
    /// disabled).
    pub sweeper: Option<SweeperSnapshot>,
    /// Snapshot/WAL counters (absent without a persistence directory).
    pub persistence: Option<PersistStats>,
    /// Generational-engine mutation counters: generation number, applied
    /// appends/removals/expiries, incremental index updates vs rebuilds,
    /// shard re-partitions, pending TTLs.
    pub mutations: MutationStats,
    /// Merged statistics of every successful query; `cache_hits` /
    /// `cache_misses` mirror the cache counters above.
    pub search: SearchStats,
}
