//! The threaded HTTP server: a bounded worker pool over an
//! [`EngineHandle`].
//!
//! The topology mirrors the engine's batch executor: one acceptor thread
//! feeds accepted connections into a *bounded* channel, and a fixed pool of
//! workers drains it, each serving whole connections (keep-alive included).
//! The bound is the admission valve — when every worker is busy and the
//! queue is full, the acceptor blocks and excess load piles up in the
//! kernel's TCP backlog instead of ballooning memory in user space.

use crate::http::{self, HttpRequest};
use crate::metrics::{MetricsSnapshot, ServerMetrics, SweeperSnapshot};
use asrs_core::sync::Mutex;
use asrs_core::{AsrsError, EngineHandle, QueryRequest};
use asrs_data::SpatialObject;
use asrs_persist::PersistHandle;
use serde::{Deserialize, Serialize};
use std::io::{self, BufReader};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing of the serving topology.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.  Defaults to the available
    /// parallelism, capped at 8 — queries themselves may fan out further
    /// (batch requests use the engine's own worker pool).
    pub workers: usize,
    /// Bound of the accepted-connection queue; the acceptor blocks when it
    /// is full (admission control by backpressure).
    pub backlog: usize,
    /// Per-connection read timeout; an idle keep-alive connection is closed
    /// after this long, which also bounds how long shutdown can take.
    pub read_timeout: Duration,
    /// Whole-request read deadline: the total wall-clock time one request
    /// (head + body) may take to arrive.  The per-read socket timeout only
    /// bounds individual syscalls, so without this a client trickling one
    /// byte per timeout window could pin a pool worker indefinitely.
    pub request_deadline: Duration,
    /// Cadence of the background maintenance thread, which expires TTL'd
    /// objects (`sweep_expired`) and takes persistence snapshots when the
    /// write-ahead log outgrows its compaction threshold.  `None` disables
    /// the thread; clients must then `POST /sweep` (and `POST /snapshot`)
    /// themselves.  Defaults to every 500 ms.
    pub sweep_interval: Option<Duration>,
    /// Server-side execution deadline applied to `/query` requests that do
    /// not carry their own budget: the request is submitted with this
    /// budget, so a query that cannot finish in time answers 408 instead
    /// of pinning a pool worker.  A client-supplied budget always wins.
    /// `None` (the default) leaves budget-less queries unbounded.
    pub query_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(8);
        Self {
            workers,
            backlog: workers * 4,
            read_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(30),
            sweep_interval: Some(Duration::from_millis(500)),
            query_deadline: None,
        }
    }
}

/// A bound-but-not-yet-serving server.  [`AsrsServer::start`] spawns the
/// threads and returns the [`ServerHandle`] controlling them.
#[derive(Debug)]
pub struct AsrsServer {
    listener: TcpListener,
    engine: EngineHandle,
    config: ServerConfig,
    persist: Option<Arc<PersistHandle>>,
}

impl AsrsServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) without serving
    /// yet.
    pub fn bind<A: ToSocketAddrs>(
        engine: EngineHandle,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            engine,
            config,
            persist: None,
        })
    }

    /// Attaches the engine's persistence handle: enables `POST /snapshot`,
    /// surfaces the WAL/snapshot counters under `/metrics`, and lets the
    /// maintenance thread snapshot in the background when the write-ahead
    /// log outgrows its compaction threshold.
    pub fn with_persistence(mut self, persist: Arc<PersistHandle>) -> Self {
        self.persist = Some(persist);
        self
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the acceptor, worker, and maintenance threads and starts
    /// serving.
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: self.engine,
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            read_timeout: self.config.read_timeout,
            request_deadline: self.config.request_deadline,
            query_deadline: self.config.query_deadline,
            persist: self.persist,
            sweeper: self.config.sweep_interval.map(SweeperState::new),
        });
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            sync_channel(self.config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::with_capacity(self.config.workers + 1);
        for _ in 0..self.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            threads.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }
        let acceptor_shared = Arc::clone(&shared);
        let listener = self.listener;
        threads.push(std::thread::spawn(move || {
            accept_loop(&acceptor_shared, &listener, tx);
        }));
        if shared.sweeper.is_some() {
            let sweeper_shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                maintenance_loop(&sweeper_shared)
            }));
        }

        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

/// Controls a running server: address, metrics, and shutdown.  Dropping
/// the handle shuts the server down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A metrics snapshot, as `GET /metrics` would serve it.
    pub fn metrics(&self) -> MetricsSnapshot {
        full_metrics(&self.shared)
    }

    /// Stops accepting, drains queued connections, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of its blocking accept; it observes the
        // flag, stops accepting and drops the channel sender, which lets
        // the workers drain and exit.  An unspecified bind address
        // (0.0.0.0 / ::) is not connectable on every platform, so the
        // wake-up targets loopback on the same port, with a timeout so a
        // firewalled self-connect cannot hang shutdown.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match self.addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[derive(Debug)]
struct Shared {
    engine: EngineHandle,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    read_timeout: Duration,
    request_deadline: Duration,
    query_deadline: Option<Duration>,
    persist: Option<Arc<PersistHandle>>,
    sweeper: Option<SweeperState>,
}

/// Counters of the background maintenance thread.
#[derive(Debug)]
struct SweeperState {
    interval: Duration,
    sweeps: AtomicU64,
    swept_objects: AtomicU64,
    sweep_errors: AtomicU64,
    sweeps_skipped: AtomicU64,
    snapshots_taken: AtomicU64,
    snapshot_errors: AtomicU64,
}

impl SweeperState {
    fn new(interval: Duration) -> Self {
        Self {
            interval,
            sweeps: AtomicU64::new(0),
            swept_objects: AtomicU64::new(0),
            sweep_errors: AtomicU64::new(0),
            sweeps_skipped: AtomicU64::new(0),
            snapshots_taken: AtomicU64::new(0),
            snapshot_errors: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> SweeperSnapshot {
        SweeperSnapshot {
            interval_ms: self.interval.as_millis() as u64,
            sweeps: self.sweeps.load(Ordering::Relaxed),
            swept_objects: self.swept_objects.load(Ordering::Relaxed),
            sweep_errors: self.sweep_errors.load(Ordering::Relaxed),
            sweeps_skipped: self.sweeps_skipped.load(Ordering::Relaxed),
            snapshots_taken: self.snapshots_taken.load(Ordering::Relaxed),
            snapshot_errors: self.snapshot_errors.load(Ordering::Relaxed),
        }
    }
}

/// Granularity of the maintenance thread's shutdown poll: sleeps are
/// chopped into slices this long so a long sweep interval cannot delay
/// shutdown by more than one slice.
const MAINTENANCE_POLL: Duration = Duration::from_millis(50);

/// The background maintenance loop: every `sweep_interval`, expire TTL'd
/// objects, and — when persistence is attached and its write-ahead log has
/// outgrown the compaction threshold — snapshot the current generation.
/// Both run off the request path: queries and mutations never wait on a
/// sweep or a snapshot (snapshots serialize an `Arc`'d immutable
/// generation).
///
/// The timer sweep yields to write traffic: every application commit
/// batch pops the then-due TTL expiries and folds them into its own
/// generation (see `asrs_core::mutate`), so when the generation advanced
/// since the previous tick the expiries already rode those batches and
/// the tick skips its sweep.  The timer only fires on quiet intervals —
/// its original job — which keeps an append-heavy server from paying a
/// redundant mutator acquisition (and publish) every `sweep_interval`.
fn maintenance_loop(shared: &Shared) {
    let Some(sweeper) = shared.sweeper.as_ref() else {
        return;
    };
    let mut last = Instant::now();
    let mut last_generation = shared.engine.generation();
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(MAINTENANCE_POLL.min(sweeper.interval));
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if last.elapsed() < sweeper.interval {
            continue;
        }
        last = Instant::now();
        let generation = shared.engine.generation();
        if generation != last_generation {
            last_generation = generation;
            sweeper.sweeps_skipped.fetch_add(1, Ordering::Relaxed);
            maybe_snapshot(shared, sweeper);
            continue;
        }
        match shared.engine.sweep_expired() {
            Ok(receipts) => {
                sweeper.sweeps.fetch_add(1, Ordering::Relaxed);
                sweeper
                    .swept_objects
                    .fetch_add(receipts.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                sweeper.sweep_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        last_generation = shared.engine.generation();
        maybe_snapshot(shared, sweeper);
    }
}

/// Snapshot the current generation when the write-ahead log has outgrown
/// the compaction threshold.  Runs on every maintenance tick, whether or
/// not the tick swept.
fn maybe_snapshot(shared: &Shared, sweeper: &SweeperState) {
    if let Some(persist) = shared.persist.as_ref() {
        if persist.snapshot_due() {
            match persist.snapshot_now(&shared.engine.export_state()) {
                Ok(_) => {
                    sweeper.snapshots_taken.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    sweeper.snapshot_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: SyncSender<TcpStream>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Persistent accept errors (fd exhaustion, EMFILE) return
                // instantly; back off briefly instead of spinning a core,
                // which would worsen exactly the overload that caused it.
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    // Dropping `tx` here ends the workers once the queue drains.
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // A poisoned queue lock means a sibling worker panicked holding
        // it; exiting is the same shutdown path as a closed channel.  The
        // guard is released before serving so workers dequeue in parallel.
        // interlock:allow(blocking recv is the worker's idle wait; the guard spans only the dequeue, never the serve)
        let received = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let stream = match received {
            Ok(stream) => stream,
            Err(_) => return,
        };
        serve_connection(shared, stream);
    }
}

/// Serves one connection until the client closes, asks to close, breaks
/// framing, or the server shuts down.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    if stream.set_read_timeout(Some(shared.read_timeout)).is_err() {
        return;
    }
    // See `HttpClient::connect`: disable Nagle so small JSON responses are
    // not held hostage to the peer's delayed ACKs.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match http::read_request(&mut reader, shared.request_deadline) {
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive() && !shared.shutdown.load(Ordering::SeqCst);
                // A panicking handler must cost the client a 500, never a
                // pool worker: an unwinding worker thread would die
                // silently and the pool would shrink request by request —
                // the same invariant the engine's batch slots uphold.
                let (status, body) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    route(shared, &request)
                }))
                .unwrap_or_else(|_| {
                    // Attribute the failure to the query counters only when
                    // a query actually failed — the counter is documented
                    // as "/query requests answered 5xx".
                    if request.path.split('?').next() == Some("/query") {
                        shared.metrics.record_query_error(500);
                    }
                    (500, error_body("internal", "request handler panicked"))
                });
                if http::write_response(&mut writer, status, &body, keep_alive).is_err() {
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            // Clean end-of-stream between requests.
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                shared.metrics.record_protocol_error();
                let body = error_body("malformed-request", &e.to_string());
                let _ = http::write_response(&mut writer, 400, &body, false);
                return;
            }
            // Timeout or reset: close (an idle keep-alive client simply
            // reconnects).
            Err(_) => return,
        }
    }
}

fn route(shared: &Shared, request: &HttpRequest) -> (u16, String) {
    shared.metrics.record_request();
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("POST", "/query") => handle_query(shared, &request.body),
        // /explain answers GET for symmetry with /metrics, but the request
        // payload travels in the body either way.
        ("GET" | "POST", "/explain") => handle_explain(shared, &request.body),
        ("POST", "/append") => handle_append(shared, &request.body),
        ("POST", "/append_batch") => handle_append_batch(shared, &request.body),
        ("DELETE", p) if p.strip_prefix("/objects/").is_some() => {
            handle_delete(shared, p.strip_prefix("/objects/").unwrap_or(""))
        }
        ("POST", "/sweep") => handle_sweep(shared),
        ("POST", "/snapshot") => handle_snapshot(shared),
        ("GET", "/metrics") => (200, serde::json::to_string(&full_metrics(shared))),
        ("GET", "/audit") => handle_audit(shared),
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}".to_string()),
        (
            _,
            "/query" | "/explain" | "/metrics" | "/audit" | "/healthz" | "/append"
            | "/append_batch" | "/sweep" | "/snapshot",
        ) => (
            405,
            error_body(
                "method-not-allowed",
                &format!("{} does not accept {}", path, request.method),
            ),
        ),
        (_, p) if p.starts_with("/objects/") => (
            405,
            error_body(
                "method-not-allowed",
                &format!("{} does not accept {}", path, request.method),
            ),
        ),
        _ => (
            404,
            error_body("not-found", &format!("no route for {path}")),
        ),
    }
}

/// Assembles the full `/metrics` payload from every counter source.
fn full_metrics(shared: &Shared) -> MetricsSnapshot {
    shared.metrics.snapshot(
        shared.engine.cache_stats(),
        shared.engine.shard_request_counts(),
        shared.engine.mutation_stats(),
        shared.sweeper.as_ref().map(SweeperState::snapshot),
        shared.persist.as_ref().map(|p| p.stats()),
    )
}

fn parse_request_body(body: &[u8]) -> Result<QueryRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    serde::json::from_str(text).map_err(|e| e.to_string())
}

fn handle_query(shared: &Shared, body: &[u8]) -> (u16, String) {
    let mut request = match parse_request_body(body) {
        Ok(request) => request,
        Err(message) => {
            shared.metrics.record_query_error(400);
            return (400, error_body("invalid-json", &message));
        }
    };
    // The server-side deadline backstops clients that sent no budget of
    // their own; the engine's budget machinery then turns an over-long
    // query into `DeadlineExceeded`, which maps to 408 below.
    if let Some(deadline) = shared.query_deadline {
        if request.budget_ms().is_none() {
            request = request.with_budget_ms(deadline.as_millis().max(1) as u64);
        }
    }
    match shared.engine.submit(&request) {
        Ok(response) => {
            shared.metrics.record_query_ok(&response.stats);
            (200, serde::json::to_string(&response))
        }
        Err(error) => {
            let (status, kind) = status_for(&error);
            shared.metrics.record_query_error(status);
            (status, error_body(kind, &error.to_string()))
        }
    }
}

/// The `POST /append` payload: the object to insert plus an optional
/// time-to-live in milliseconds (expired objects are removed by
/// `POST /sweep`).
#[derive(Debug, Deserialize)]
struct AppendBody {
    object: SpatialObject,
    ttl_ms: Option<u64>,
}

fn handle_append(shared: &Shared, body: &[u8]) -> (u16, String) {
    let parsed: Result<AppendBody, String> = std::str::from_utf8(body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| serde::json::from_str(text).map_err(|e| e.to_string()));
    let append = match parsed {
        Ok(append) => append,
        Err(message) => {
            shared.metrics.record_mutation_error(400);
            return (400, error_body("invalid-json", &message));
        }
    };
    let result = match append.ttl_ms {
        Some(ms) => shared
            .engine
            .append_with_ttl(append.object, Duration::from_millis(ms)),
        None => shared.engine.append(append.object),
    };
    match result {
        Ok(receipt) => {
            shared.metrics.record_mutation_ok();
            shared.metrics.record_commit(std::slice::from_ref(&receipt));
            (200, serde::json::to_string(&receipt))
        }
        Err(error) => {
            let (status, kind) = status_for(&error);
            shared.metrics.record_mutation_error(status);
            (status, error_body(kind, &error.to_string()))
        }
    }
}

/// The `POST /append_batch` payload: a whole batch of appends (each with
/// its optional TTL) committed atomically — one published generation, one
/// WAL fsync, all-or-nothing validation.
#[derive(Debug, Deserialize)]
struct AppendBatchBody {
    items: Vec<AppendBody>,
}

/// The `POST /append_batch` response: one receipt per appended object,
/// all sharing the batch's generation.
#[derive(Debug, Serialize)]
struct AppendBatchReceipts {
    receipts: Vec<asrs_core::MutationReceipt>,
}

fn handle_append_batch(shared: &Shared, body: &[u8]) -> (u16, String) {
    let parsed: Result<AppendBatchBody, String> = std::str::from_utf8(body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| serde::json::from_str(text).map_err(|e| e.to_string()));
    let batch = match parsed {
        Ok(batch) => batch,
        Err(message) => {
            shared.metrics.record_mutation_error(400);
            return (400, error_body("invalid-json", &message));
        }
    };
    let items: Vec<_> = batch
        .items
        .into_iter()
        .map(|a| (a.object, a.ttl_ms.map(Duration::from_millis)))
        .collect();
    match shared.engine.append_batch(items) {
        Ok(receipts) => {
            shared.metrics.record_mutation_ok();
            shared.metrics.record_batch_ingest(receipts.len() as u64);
            shared.metrics.record_commit(&receipts);
            (200, serde::json::to_string(&AppendBatchReceipts { receipts }))
        }
        Err(error) => {
            let (status, kind) = status_for(&error);
            shared.metrics.record_mutation_error(status);
            (status, error_body(kind, &error.to_string()))
        }
    }
}

fn handle_delete(shared: &Shared, id: &str) -> (u16, String) {
    let Ok(id) = id.parse::<u64>() else {
        shared.metrics.record_mutation_error(400);
        return (
            400,
            error_body("invalid-object-id", &format!("{id:?} is not a u64 id")),
        );
    };
    match shared.engine.remove(id) {
        Ok(receipt) => {
            shared.metrics.record_mutation_ok();
            shared.metrics.record_commit(std::slice::from_ref(&receipt));
            (200, serde::json::to_string(&receipt))
        }
        Err(error) => {
            let (status, kind) = status_for(&error);
            shared.metrics.record_mutation_error(status);
            (status, error_body(kind, &error.to_string()))
        }
    }
}

fn handle_sweep(shared: &Shared) -> (u16, String) {
    match shared.engine.sweep_expired() {
        Ok(receipts) => {
            shared.metrics.record_mutation_ok();
            shared.metrics.record_commit(&receipts);
            (
                200,
                serde::json::to_string(&SweepBody { expired: receipts }),
            )
        }
        Err(error) => {
            let (status, kind) = status_for(&error);
            shared.metrics.record_mutation_error(status);
            (status, error_body(kind, &error.to_string()))
        }
    }
}

#[derive(Debug, Serialize)]
struct SweepBody {
    expired: Vec<asrs_core::MutationReceipt>,
}

/// `POST /snapshot`: persist the engine's current generation immediately
/// (the background thread otherwise snapshots only when the WAL outgrows
/// its threshold).  409 when the server runs without persistence.
/// `GET /audit`: run the deep invariant audit over the current generation.
/// 200 with the report when every check passes; 500 with the same report
/// when any invariant is violated, so probes and dashboards can alert on
/// status alone while operators read the findings.
fn handle_audit(shared: &Shared) -> (u16, String) {
    let report = shared.engine.audit();
    let status = if report.is_clean() { 200 } else { 500 };
    (status, serde::json::to_string(&report))
}

fn handle_snapshot(shared: &Shared) -> (u16, String) {
    let Some(persist) = shared.persist.as_ref() else {
        return (
            409,
            error_body(
                "persistence-not-configured",
                "the server was started without a persistence directory",
            ),
        );
    };
    match persist.snapshot_now(&shared.engine.export_state()) {
        Ok(report) => (200, serde::json::to_string(&report)),
        Err(error) => (500, error_body("persistence", &error.to_string())),
    }
}

fn handle_explain(shared: &Shared, body: &[u8]) -> (u16, String) {
    let request = match parse_request_body(body) {
        Ok(request) => request,
        Err(message) => return (400, error_body("invalid-json", &message)),
    };
    match shared.engine.plan(&request) {
        Ok(plan) => {
            shared.metrics.record_plan_explained();
            let body = ExplainBody {
                backend: plan.backend.name().to_string(),
                operation: plan.operation.to_string(),
                reason: plan.reason.to_string(),
                explanation: plan.explain(),
                budget_ms: plan.budget_ms,
                span_ratio: plan.span_ratio,
                estimated_work_ds_search: plan.estimates.ds_search,
                estimated_work_gi_ds: plan.estimates.gi_ds,
                estimated_work_naive: plan.estimates.naive,
                shard_fan_out: plan.fan_out,
            };
            (200, serde::json::to_string(&body))
        }
        Err(error) => {
            let (status, kind) = status_for(&error);
            (status, error_body(kind, &error.to_string()))
        }
    }
}

/// Maps an engine error to its HTTP status and a stable machine-readable
/// kind: 408 for a spent budget, 429 for a breached admission ceiling,
/// 404/409 for mutations addressing the wrong id, 500 for engine-internal
/// failures, 400 for everything the client phrased wrong.
pub fn status_for(error: &AsrsError) -> (u16, &'static str) {
    match error {
        AsrsError::DeadlineExceeded { .. } => (408, "deadline-exceeded"),
        AsrsError::CostCeilingExceeded { .. } => (429, "cost-ceiling-exceeded"),
        AsrsError::UnknownObjectId { .. } => (404, "unknown-object-id"),
        AsrsError::DuplicateObjectId { .. } => (409, "duplicate-object-id"),
        AsrsError::Schema(_) => (400, "schema-violation"),
        AsrsError::Persistence { .. } => (500, "persistence"),
        AsrsError::Internal { .. } => (500, "internal"),
        AsrsError::Query(_) => (400, "invalid-query"),
        AsrsError::Config(_) => (400, "invalid-config"),
        AsrsError::EmptyDataset => (400, "empty-dataset"),
        AsrsError::IndexRequired { .. } => (400, "index-required"),
        AsrsError::IndexMismatch { .. } => (400, "index-mismatch"),
        AsrsError::InvalidTopK => (400, "invalid-top-k"),
        AsrsError::InvalidRegionSize { .. } => (400, "invalid-region-size"),
        AsrsError::BackendUnsupported { .. } => (400, "backend-unsupported"),
    }
}

#[derive(Debug, Serialize)]
struct ErrorBody {
    error: ErrorDetail,
}

#[derive(Debug, Serialize)]
struct ErrorDetail {
    kind: String,
    message: String,
}

fn error_body(kind: &str, message: &str) -> String {
    serde::json::to_string(&ErrorBody {
        error: ErrorDetail {
            kind: kind.to_string(),
            message: message.to_string(),
        },
    })
}

#[derive(Debug, Serialize)]
struct ExplainBody {
    backend: String,
    operation: String,
    reason: String,
    explanation: String,
    budget_ms: Option<u64>,
    span_ratio: Option<(f64, f64)>,
    estimated_work_ds_search: f64,
    estimated_work_gi_ds: Option<f64>,
    estimated_work_naive: f64,
    shard_fan_out: Option<asrs_core::ShardFanOut>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_statuses_map_by_family() {
        assert_eq!(
            status_for(&AsrsError::DeadlineExceeded {
                budget: Duration::ZERO
            })
            .0,
            408
        );
        assert_eq!(
            status_for(&AsrsError::Internal {
                message: "x".to_string()
            })
            .0,
            500
        );
        assert_eq!(status_for(&AsrsError::InvalidTopK).0, 400);
        assert_eq!(status_for(&AsrsError::EmptyDataset).0, 400);
        assert_eq!(
            status_for(&AsrsError::IndexRequired { strategy: "gi-ds" }).0,
            400
        );
    }

    #[test]
    fn error_bodies_are_json_with_kind_and_message() {
        let body = error_body("invalid-json", "oops");
        assert!(body.contains("\"kind\":\"invalid-json\""));
        assert!(body.contains("\"message\":\"oops\""));
    }
}
