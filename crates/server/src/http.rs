//! A minimal, dependency-free HTTP/1.1 codec.
//!
//! The server only needs the subset a JSON API uses: request line, headers,
//! `Content-Length`-delimited bodies, keep-alive, and fixed-length
//! responses.  Chunked transfer encoding and HTTP/2 are deliberately out of
//! scope — the load balancer in front of a production deployment speaks
//! plain HTTP/1.1 to its upstreams anyway.
//!
//! [`HttpClient`] is the matching client used by the integration tests and
//! the `asrs-bench` load generator, so both ends of the wire exercise the
//! same framing rules.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Upper bound on the request line plus headers, defending the worker pool
/// against unbounded allocations from a misbehaving client.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (a batch of a few thousand queries fits
/// comfortably).
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct HttpRequest {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path plus optional query string).
    pub path: String,
    /// Header names are lower-cased; values are trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length`-delimited; empty when absent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The first header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// defaults to keep-alive unless `Connection: close` is sent).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A wall-clock budget covering one whole request read.  The per-read
/// socket timeout only bounds individual syscalls, so a client trickling
/// one byte per timeout window could pin a pool worker indefinitely; the
/// budget closes the connection once the *total* read time is spent
/// (reported as `TimedOut`, which the server treats as a silent close).
#[derive(Debug)]
struct ReadBudget {
    started: Instant,
    limit: Duration,
}

impl ReadBudget {
    fn new(limit: Duration) -> Self {
        Self {
            started: Instant::now(),
            limit,
        }
    }

    fn check(&self) -> io::Result<()> {
        if self.started.elapsed() > self.limit {
            Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request read exceeded the whole-request deadline",
            ))
        } else {
            Ok(())
        }
    }
}

/// Reads one request from the stream.  Returns `Ok(None)` on a clean
/// end-of-stream before any byte of a request, and `Err` with
/// `InvalidData` on malformed framing (the caller answers 400 and closes)
/// or `TimedOut` when the whole read exceeds `deadline` (the caller closes
/// silently).
pub fn read_request<R: BufRead>(
    reader: &mut R,
    deadline: Duration,
) -> io::Result<Option<HttpRequest>> {
    let budget = ReadBudget::new(deadline);
    let mut head = 0usize;
    // Request line; tolerate stray blank lines between pipelined requests.
    let request_line = loop {
        let Some(line) = read_line(reader, &mut head, &budget)? else {
            return Ok(None);
        };
        if !line.is_empty() {
            break line;
        }
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_string(), p.to_string(), v)
        }
        _ => return Err(malformed(format!("bad request line: {request_line:?}"))),
    };
    let _ = version;

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader, &mut head, &budget)? else {
            return Err(malformed("connection closed mid-headers".to_string()));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(malformed(format!("bad header line: {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Bodies are framed by Content-Length only; reject the transfer
    // encodings this codec does not speak rather than silently treating
    // the body as empty and desyncing on the chunk framing that follows.
    if let Some((_, encoding)) = headers.iter().find(|(k, _)| k == "transfer-encoding") {
        return Err(malformed(format!(
            "transfer-encoding {encoding:?} is not supported; send Content-Length"
        )));
    }
    // Conflicting duplicate Content-Length headers are the classic
    // request-smuggling desync vector (RFC 9112 requires rejecting
    // differing values); repeats of the *same* value are tolerated.
    let mut content_length: Option<usize> = None;
    for (_, value) in headers.iter().filter(|(k, _)| k == "content-length") {
        let parsed: usize = value
            .parse()
            .map_err(|_| malformed(format!("bad content-length: {value:?}")))?;
        match content_length {
            None => content_length = Some(parsed),
            Some(existing) if existing == parsed => {}
            Some(existing) => {
                return Err(malformed(format!(
                    "conflicting content-length headers: {existing} vs {parsed}"
                )))
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(malformed(format!(
            "body of {content_length} bytes exceeds the limit"
        )));
    }
    // Read the body in bounded steps so the whole-request budget applies
    // between syscalls (read_exact could block-trickle past any deadline).
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        budget.check()?;
        let n = reader.read(&mut body[filled..])?;
        if n == 0 {
            return Err(malformed("connection closed mid-body".to_string()));
        }
        filled += n;
    }
    Ok(Some(HttpRequest {
        method,
        path,
        headers,
        body,
    }))
}

/// Reads one CRLF/LF-terminated line, charging its bytes against the
/// per-request head budget.  `Ok(None)` means end-of-stream.
///
/// The budget is enforced *while* reading, never after: a newline-free
/// byte stream errors out as soon as it crosses the limit instead of
/// accumulating in memory first (`BufRead::read_line` would buffer the
/// whole "line" before any length check could run).
fn read_line<R: BufRead>(
    reader: &mut R,
    head: &mut usize,
    budget: &ReadBudget,
) -> io::Result<Option<String>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        budget.check()?;
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // End of stream: clean only if nothing of a line was read.
            if line.is_empty() {
                return Ok(None);
            }
            break;
        }
        let (take, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (buf.len(), false),
        };
        if *head + line.len() + take > MAX_HEAD_BYTES {
            return Err(malformed("request head exceeds the limit".to_string()));
        }
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if done {
            break;
        }
    }
    *head += line.len();
    while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| malformed("request head is not UTF-8".to_string()))
}

fn malformed(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// The standard reason phrase for the status codes the server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one JSON response with explicit framing.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {len}\r\nConnection: {conn}\r\n\r\n{body}",
        reason = reason_phrase(status),
        len = body.len(),
        conn = if keep_alive { "keep-alive" } else { "close" },
    )?;
    writer.flush()
}

/// A keep-alive HTTP/1.1 client speaking the same subset as the server.
/// Used by the integration tests and the `asrs-bench` load generator.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        // Request/response round trips are latency-bound; Nagle's algorithm
        // interacting with delayed ACKs adds tens of milliseconds per hop.
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and reads the full response, returning the status
    /// code and body.  The connection stays open for the next call.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        {
            let stream = self.reader.get_mut();
            write!(
                stream,
                "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len(),
            )?;
            stream.flush()?;
        }
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        // Generous: a cold query may legitimately compute for a while
        // before the first response byte arrives.
        let budget = ReadBudget::new(Duration::from_secs(120));
        let mut head = 0usize;
        let status_line = read_line(&mut self.reader, &mut head, &budget)?
            .ok_or_else(|| malformed("connection closed before a response".to_string()))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| malformed(format!("bad status line: {status_line:?}")))?;
        let mut content_length = 0usize;
        loop {
            let line = read_line(&mut self.reader, &mut head, &budget)?
                .ok_or_else(|| malformed("connection closed mid-headers".to_string()))?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| malformed(format!("bad content-length: {value:?}")))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|body| (status, body))
            .map_err(|_| malformed("response body is not UTF-8".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> io::Result<Option<HttpRequest>> {
        read_request(
            &mut Cursor::new(text.as_bytes().to_vec()),
            Duration::from_secs(5),
        )
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, b"{\"a\"");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive());
    }

    #[test]
    fn connection_close_is_honoured() {
        let req = parse("GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_yields_none_and_garbage_errors() {
        assert!(parse("").unwrap().is_none());
        assert!(parse("NONSENSE\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nContent-Length: zero\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n").is_err());
        // A truncated body is an error, not a hang.
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").is_err());
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        // CL.CL request smuggling: a front proxy honouring the other copy
        // of the header would desync from us, so differing duplicates are
        // a hard error; identical repeats are tolerated per RFC 9112.
        assert!(
            parse("POST / HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 2\r\n\r\nhi").is_err()
        );
        let req = parse("POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected_explicitly() {
        // Silently ignoring Transfer-Encoding would route a bodyless
        // request and then parse the chunk-size line as the next request —
        // a confusing two-error failure instead of one clear rejection.
        assert!(parse(
            "POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n"
        )
        .is_err());
    }

    #[test]
    fn oversized_heads_and_bodies_are_rejected() {
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES));
        assert!(parse(&huge).is_err());
        // A newline-free stream must be rejected at the budget, not
        // buffered whole: the error fires even though no line ever ends.
        let endless = format!("GET /{}", "x".repeat(MAX_HEAD_BYTES * 4));
        assert!(parse(&endless).is_err());
        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(parse(&big_body).is_err());
    }

    #[test]
    fn responses_are_framed_with_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, 408, "{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 408 Request Timeout\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
