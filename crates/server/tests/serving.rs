//! End-to-end serving tests over real sockets: smoke round trips, error
//! mapping, and the concurrency/cache-identity guarantees of the satellite
//! task — N threads hammering `EngineHandle` clones and the HTTP endpoint
//! with a mixed workload must observe responses byte-identical to
//! single-threaded `submit`, with cache hits indistinguishable from cold
//! misses.

use asrs_aggregator::{CompositeAggregator, FeatureVector, Selection, Weights};
use asrs_core::{AsrsEngine, AsrsQuery, QueryRequest, QueryResponse};
use asrs_data::gen::UniformGenerator;
use asrs_geo::RegionSize;
use asrs_server::{AsrsServer, HttpClient, ServerConfig, ServerHandle};

fn engine(cache_capacity: usize) -> AsrsEngine {
    let ds = UniformGenerator::default().generate(400, 77);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    AsrsEngine::builder(ds, agg)
        .build_index(20, 20)
        .cache_capacity(cache_capacity)
        .build()
        .unwrap()
}

fn sample_query(i: u32) -> AsrsQuery {
    AsrsQuery::new(
        RegionSize::new(6.0 + i as f64, 8.0),
        FeatureVector::new(vec![i as f64, 2.0, 1.0, 0.0]),
        Weights::uniform(4),
    )
}

/// The mixed workload: every operation family, including budgeted
/// requests (generous budgets — these must all succeed).
fn mixed_requests() -> Vec<QueryRequest> {
    vec![
        QueryRequest::similar(sample_query(1)),
        QueryRequest::similar(sample_query(2)).with_budget_ms(60_000),
        QueryRequest::top_k(sample_query(3), 3),
        QueryRequest::approximate(sample_query(4), 0.25),
        QueryRequest::batch(vec![sample_query(1), sample_query(5)]),
        QueryRequest::max_rs(RegionSize::new(15.0, 15.0)),
    ]
}

fn start(engine: &AsrsEngine) -> ServerHandle {
    AsrsServer::bind(engine.handle(), "127.0.0.1:0", ServerConfig::default())
        .and_then(AsrsServer::start)
        .expect("server binds an ephemeral port")
}

#[test]
fn smoke_boot_round_trip_clean_shutdown() {
    let engine = engine(64);
    let server = start(&engine);
    let addr = server.addr();
    {
        let mut client = HttpClient::connect(addr).unwrap();
        let (status, body) = client.request("GET", "/healthz", "").unwrap();
        assert_eq!(status, 200, "{body}");

        let request = QueryRequest::similar(sample_query(1));
        let (status, body) = client
            .request("POST", "/query", &serde::json::to_string(&request))
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let over_wire: QueryResponse = serde::json::from_str(&body).unwrap();
        // The first submission populated the cache, so the direct path
        // returns the stored response and both must agree exactly.
        let direct = engine.submit(&request).unwrap();
        assert_eq!(over_wire, direct);

        let (status, body) = client
            .request("GET", "/explain", &serde::json::to_string(&request))
            .unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"backend\":\"gi-ds\""), "{body}");
        assert!(body.contains("explanation"), "{body}");

        let (status, body) = client.request("GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"queries_ok\":1"), "{body}");
        assert!(body.contains("\"cache\":"), "{body}");
    }
    server.shutdown();
    // A clean shutdown releases the port: fresh connections are refused
    // (or reset before a response).
    let late = HttpClient::connect(addr).and_then(|mut c| c.request("GET", "/healthz", ""));
    assert!(late.is_err(), "server must not answer after shutdown");
}

#[test]
fn mutation_endpoints_append_remove_sweep_and_report_generations() {
    let engine = engine(64);
    let server = start(&engine);
    let addr = server.addr();
    let mut client = HttpClient::connect(addr).unwrap();

    // The pre-mutation answer to a fixed request (also warms the cache).
    let request = QueryRequest::similar(sample_query(2));
    let body = serde::json::to_string(&request);
    let (status, before) = client.request("POST", "/query", &body).unwrap();
    assert_eq!(status, 200);

    // Append a valid object near the extent's middle.
    let template = engine.dataset().object(0).clone();
    let object = asrs_data::SpatialObject::new(
        100_000,
        asrs_geo::Point::new(50.0, 50.0),
        template.values.clone(),
    );
    let append = format!("{{\"object\":{}}}", serde::json::to_string(&object));
    let (status, receipt) = client.request("POST", "/append", &append).unwrap();
    assert_eq!(status, 200, "{receipt}");
    assert!(receipt.contains("\"generation\":1"), "{receipt}");
    assert!(receipt.contains("\"kind\":\"append\""), "{receipt}");

    // A duplicate id is a 409.
    let (status, body409) = client.request("POST", "/append", &append).unwrap();
    assert_eq!(status, 409, "{body409}");
    assert!(body409.contains("duplicate-object-id"), "{body409}");

    // The same query now answers from generation 1 — and must equal a
    // fresh engine rebuilt from the mutated dataset, not the stale cache.
    let (status, after) = client.request("POST", "/query", &body).unwrap();
    assert_eq!(status, 200);
    let rebuilt = AsrsEngine::builder((*engine.dataset()).clone(), (*engine.aggregator()).clone())
        .build_index(20, 20)
        .build()
        .unwrap();
    let after_response: QueryResponse = serde::json::from_str(&after).unwrap();
    let rebuilt_response = rebuilt.submit(&request).unwrap();
    assert_eq!(
        serde::json::to_string(&after_response.stats_stripped()),
        serde::json::to_string(&rebuilt_response.stats_stripped()),
        "post-append response must match a rebuilt engine"
    );
    let _ = before;

    // DELETE removes by id; a second DELETE of the same id is a 404.
    let (status, receipt) = client.request("DELETE", "/objects/100000", "").unwrap();
    assert_eq!(status, 200, "{receipt}");
    assert!(receipt.contains("\"generation\":2"), "{receipt}");
    let (status, missing) = client.request("DELETE", "/objects/100000", "").unwrap();
    assert_eq!(status, 404, "{missing}");
    assert!(missing.contains("unknown-object-id"), "{missing}");
    let (status, bad) = client
        .request("DELETE", "/objects/not-a-number", "")
        .unwrap();
    assert_eq!(status, 400, "{bad}");

    // TTL'd append + sweep: a zero TTL expires on the next sweep.
    let ttl_append = format!(
        "{{\"object\":{},\"ttl_ms\":0}}",
        serde::json::to_string(&asrs_data::SpatialObject::new(
            100_001,
            asrs_geo::Point::new(51.0, 51.0),
            template.values.clone(),
        ))
    );
    let (status, _) = client.request("POST", "/append", &ttl_append).unwrap();
    assert_eq!(status, 200);
    std::thread::sleep(std::time::Duration::from_millis(5));
    let (status, swept) = client.request("POST", "/sweep", "").unwrap();
    assert_eq!(status, 200, "{swept}");
    assert!(swept.contains("\"kind\":\"expire\""), "{swept}");
    assert!(swept.contains("\"id\":100001"), "{swept}");

    // /metrics reports the generation and the mutation counters.
    let (status, metrics) = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("\"generation\":4"), "{metrics}");
    assert!(metrics.contains("\"appends\":2"), "{metrics}");
    assert!(metrics.contains("\"removes\":1"), "{metrics}");
    assert!(metrics.contains("\"expiries\":1"), "{metrics}");
    assert!(metrics.contains("\"mutations_ok\":4"), "{metrics}");
    assert!(
        metrics.contains("\"mutations_client_error\":3"),
        "{metrics}"
    );
    drop(client);
    server.shutdown();
}

#[test]
fn admission_ceiling_maps_to_http_429() {
    let ds = UniformGenerator::default().generate(400, 78);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(20, 20)
        .cost_ceiling(1.0) // everything costs more than one rectangle visit
        .build()
        .unwrap();
    let server = start(&engine);
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let request = QueryRequest::similar(sample_query(1));
    let (status, body) = client
        .request("POST", "/query", &serde::json::to_string(&request))
        .unwrap();
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("cost-ceiling-exceeded"), "{body}");
    // /explain still answers (planning never fails on the ceiling) and
    // names the rejection.
    let (status, body) = client
        .request("GET", "/explain", &serde::json::to_string(&request))
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("REJECTED"), "{body}");
    drop(client);
    server.shutdown();
}

#[test]
fn engine_errors_map_to_http_statuses() {
    let engine = engine(0);
    let server = start(&engine);
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // Malformed JSON → 400.
    let (status, body) = client.request("POST", "/query", "{not json").unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("invalid-json"));

    // Semantically invalid query → 400.
    let bad = QueryRequest::similar(AsrsQuery::new(
        RegionSize::new(-3.0, 4.0),
        FeatureVector::new(vec![1.0, 1.0, 1.0, 1.0]),
        Weights::uniform(4),
    ));
    let (status, body) = client
        .request("POST", "/query", &serde::json::to_string(&bad))
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("invalid-query"));

    // Spent budget → 408.
    let expired = QueryRequest::similar(sample_query(1)).with_budget_ms(0);
    let (status, body) = client
        .request("POST", "/query", &serde::json::to_string(&expired))
        .unwrap();
    assert_eq!(status, 408, "{body}");
    assert!(body.contains("deadline-exceeded"));

    // Unknown route → 404; wrong method → 405.
    let (status, _) = client.request("GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request("GET", "/query", "").unwrap();
    assert_eq!(status, 405);

    let metrics = server.metrics();
    assert_eq!(metrics.queries_ok, 0);
    assert_eq!(metrics.queries_client_error, 3);
    assert_eq!(metrics.protocol_errors, 0);
    drop(client);
    server.shutdown();
}

/// The satellite concurrency test: a mixed workload hammered from many
/// threads over both surfaces (handle clones and HTTP), byte-identical to
/// the single-threaded baseline, cache hits indistinguishable from cold
/// misses, no deadline or deadlock regressions.
#[test]
fn concurrent_serving_is_byte_identical_to_sequential_submit() {
    let engine = engine(256);
    // Single-threaded baseline; these cold misses also populate the cache,
    // so every later answer — concurrent, cached, over the wire or not —
    // must serialize to exactly these bytes.
    let requests = mixed_requests();
    let baseline: Vec<String> = requests
        .iter()
        .map(|r| serde::json::to_string(&engine.submit(r).unwrap()))
        .collect();

    let server = start(&engine);
    let addr = server.addr();
    let handle = engine.handle();

    const THREADS: usize = 8;
    const ROUNDS: usize = 4;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let requests = &requests;
            let baseline = &baseline;
            let handle = handle.clone();
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("client connects");
                for round in 0..ROUNDS {
                    for (i, request) in requests.iter().enumerate() {
                        // Alternate surfaces so both are hammered in every
                        // schedule.
                        let json = if (t + round + i) % 2 == 0 {
                            let (status, body) = client
                                .request("POST", "/query", &serde::json::to_string(request))
                                .expect("request round-trips");
                            assert_eq!(status, 200, "thread {t}: {body}");
                            body
                        } else {
                            serde::json::to_string(&handle.submit(request).unwrap())
                        };
                        assert_eq!(
                            &json, &baseline[i],
                            "thread {t} round {round} request {i} diverged from the baseline"
                        );
                    }
                }
            });
        }
    });

    let metrics = server.metrics();
    assert_eq!(metrics.protocol_errors, 0);
    assert_eq!(metrics.queries_server_error, 0);
    assert_eq!(metrics.queries_client_error, 0);
    assert!(metrics.queries_ok > 0);
    let cache = metrics.cache.expect("engine has a cache");
    assert!(
        cache.hits >= (THREADS * ROUNDS * requests.len()) as u64,
        "repeated workload must be served from the cache (hits: {})",
        cache.hits
    );
    assert!(cache.hit_rate > 0.0);
    // The hit/miss counters also surface through SearchStats.
    assert_eq!(metrics.search.cache_hits, cache.hits);
    assert_eq!(metrics.search.cache_misses, cache.misses);
    server.shutdown();
}

/// Without a cache, concurrent wire responses still agree with sequential
/// submission on everything deterministic (wall-clock stats aside).
#[test]
fn uncached_responses_agree_modulo_wall_clock() {
    let engine = engine(0);
    let request = QueryRequest::top_k(sample_query(2), 3);
    let direct = engine.submit(&request).unwrap();

    let server = start(&engine);
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let (status, body) = client
        .request("POST", "/query", &serde::json::to_string(&request))
        .unwrap();
    assert_eq!(status, 200);
    let over_wire: QueryResponse = serde::json::from_str(&body).unwrap();
    assert_eq!(over_wire.backend, direct.backend);
    assert_eq!(over_wire.results().len(), direct.results().len());
    for (a, b) in over_wire.results().iter().zip(direct.results()) {
        assert_eq!(a.region, b.region);
        assert_eq!(a.anchor, b.anchor);
        assert_eq!(a.distance, b.distance);
        assert_eq!(a.representation, b.representation);
    }
    drop(client);
    server.shutdown();
}

#[test]
fn audit_endpoint_reports_clean_state_over_the_wire() {
    let engine = engine(16);
    let server = start(&engine);
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let (status, body) = client.request("GET", "/audit", "").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"findings\":[]"), "body: {body}");
    assert!(body.contains("\"generation\""), "body: {body}");
    assert!(body.contains("\"checks_run\""), "body: {body}");

    // The auditor only reads; only GET is routed.
    let (status, _) = client.request("POST", "/audit", "").unwrap();
    assert_eq!(status, 405);

    drop(client);
    server.shutdown();
}
