//! The unified request/plan/execute API: parity between `submit` and the
//! legacy per-operation methods, planner decisions, JSON round-trips of
//! requests and responses, deadlines, and concurrent `EngineHandle` use.

use asrs_suite::prelude::*;
use std::time::Duration;

fn workload(n: usize, seed: u64) -> (Dataset, CompositeAggregator) {
    let ds = UniformGenerator::default().generate(n, seed);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    (ds, agg)
}

fn sample_query(i: u32) -> AsrsQuery {
    AsrsQuery::new(
        RegionSize::new(8.0 + i as f64, 10.0),
        FeatureVector::new(vec![i as f64, 2.0, 1.0, 0.0]),
        Weights::uniform(4),
    )
}

/// The acceptance-criterion parity test: for every operation, `submit`
/// returns byte-identical best regions and distances to the corresponding
/// legacy method (wall-clock stats aside, which differ run to run).
#[test]
fn submit_is_byte_identical_to_every_legacy_method() {
    let (ds, agg) = workload(350, 61);
    for indexed in [false, true] {
        let mut builder = AsrsEngine::builder(ds.clone(), agg.clone());
        if indexed {
            builder = builder.build_index(20, 20);
        }
        let engine = builder.build().unwrap();
        let q = sample_query(3);

        // similar ↔ search
        let legacy = engine.search(&q).unwrap();
        let via = engine.submit(&QueryRequest::similar(q.clone())).unwrap();
        let best = via.best().unwrap();
        assert_eq!(best.region, legacy.region, "indexed={indexed}");
        assert_eq!(best.anchor, legacy.anchor);
        assert_eq!(best.distance, legacy.distance);
        assert_eq!(best.representation, legacy.representation);

        // top-k ↔ search_top_k
        let legacy = engine.search_top_k(&q, 4).unwrap();
        let via = engine.submit(&QueryRequest::top_k(q.clone(), 4)).unwrap();
        assert_eq!(via.results().len(), legacy.len());
        for (a, b) in via.results().iter().zip(&legacy) {
            assert_eq!(a.region, b.region);
            assert_eq!(a.distance, b.distance);
        }

        // batch ↔ search_batch
        let queries: Vec<AsrsQuery> = (1..=5).map(sample_query).collect();
        let legacy = engine.search_batch(&queries).unwrap();
        let via = engine
            .submit(&QueryRequest::batch(queries.clone()))
            .unwrap();
        assert_eq!(via.results().len(), legacy.len());
        for (a, b) in via.results().iter().zip(&legacy) {
            assert_eq!(a.region, b.region);
            assert_eq!(a.distance, b.distance);
            assert_eq!(a.representation, b.representation);
        }

        // max-rs / selective max-rs ↔ max_rs / max_rs_selective
        let size = RegionSize::new(15.0, 15.0);
        let legacy = engine.max_rs(size).unwrap();
        let via = engine.submit(&QueryRequest::max_rs(size)).unwrap();
        let got = via.max_rs().unwrap();
        assert_eq!(got.region, legacy.region);
        assert_eq!(got.count, legacy.count);

        let selection = Selection::cat_equals(0, 1);
        let legacy = engine.max_rs_selective(size, selection.clone()).unwrap();
        let via = engine
            .submit(&QueryRequest::max_rs_selective(size, selection))
            .unwrap();
        let got = via.max_rs().unwrap();
        assert_eq!(got.region, legacy.region);
        assert_eq!(got.count, legacy.count);
    }
}

/// The approximate variant honours the (1+δ) guarantee through `submit`
/// and rejects invalid deltas.
#[test]
fn approximate_requests_respect_the_guarantee() {
    let (ds, agg) = workload(400, 71);
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(24, 24)
        .build()
        .unwrap();
    let q = sample_query(2);
    let exact = engine
        .submit(&QueryRequest::similar(q.clone()))
        .unwrap()
        .best()
        .unwrap()
        .distance;
    for delta in [0.1, 0.4] {
        let approx = engine
            .submit(&QueryRequest::approximate(q.clone(), delta))
            .unwrap()
            .best()
            .unwrap()
            .distance;
        assert!(approx <= (1.0 + delta) * exact + 1e-9);
        assert!(approx + 1e-9 >= exact);
    }
    assert!(matches!(
        engine.submit(&QueryRequest::approximate(q, -0.5)),
        Err(AsrsError::Config(_))
    ));
}

/// Acceptance criterion: two requests plan differently on the same engine
/// and `plan.explain()` names the chosen backend both times.
#[test]
fn requests_plan_differently_on_the_same_engine() {
    // Extent ~100 × 100 with a 20 × 20 index (5-unit cells).
    let (ds, agg) = workload(500, 83);
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(20, 20)
        .build()
        .unwrap();

    let tiny = QueryRequest::similar(sample_query(1)); // 9 × 10 region
    let tiny_plan = engine.plan(&tiny).unwrap();
    assert_eq!(tiny_plan.backend, Backend::GiDs);
    assert!(
        tiny_plan.explain().contains("gi-ds"),
        "{}",
        tiny_plan.explain()
    );

    let huge = QueryRequest::similar(AsrsQuery::new(
        RegionSize::new(80.0, 80.0),
        FeatureVector::new(vec![5.0, 5.0, 5.0, 5.0]),
        Weights::uniform(4),
    ));
    let huge_plan = engine.plan(&huge).unwrap();
    assert_eq!(huge_plan.backend, Backend::DsSearch);
    assert!(
        huge_plan.explain().contains("ds-search"),
        "{}",
        huge_plan.explain()
    );
    assert_ne!(tiny_plan.backend, huge_plan.backend);

    // The plans are what submit actually executes.
    assert_eq!(engine.submit(&tiny).unwrap().backend, Backend::GiDs);
    assert_eq!(engine.submit(&huge).unwrap().backend, Backend::DsSearch);
}

/// Satellite: planner decisions — index-less fallback and forced-backend
/// override (the tiny-query-on-dense-grid case is covered above).
#[test]
fn planner_falls_back_and_honours_overrides() {
    let (ds, agg) = workload(500, 83);

    // No index → DS-Search, and gi-ds cannot be forced.
    let plain = AsrsEngine::builder(ds.clone(), agg.clone())
        .build()
        .unwrap();
    let req = QueryRequest::similar(sample_query(1));
    let plan = plain.plan(&req).unwrap();
    assert_eq!(plan.backend, Backend::DsSearch);
    assert_eq!(plan.reason, PlanReason::NoIndex);
    assert!(matches!(
        plain.plan(&req.clone().with_backend(Backend::GiDs)),
        Err(AsrsError::IndexRequired { .. })
    ));

    // A forced backend is honoured even when the cost model disagrees.
    let indexed = AsrsEngine::builder(ds, agg)
        .build_index(20, 20)
        .build()
        .unwrap();
    let forced = req.clone().with_backend(Backend::DsSearch);
    let plan = indexed.plan(&forced).unwrap();
    assert_eq!(plan.backend, Backend::DsSearch);
    assert_eq!(plan.reason, PlanReason::ForcedByRequest);
    let response = indexed.submit(&forced).unwrap();
    assert_eq!(response.backend, Backend::DsSearch);
    // Forcing must not change the answer, only the route.
    let auto = indexed.submit(&req).unwrap();
    assert!((auto.best().unwrap().distance - response.best().unwrap().distance).abs() < 1e-9);
}

/// Satellite: request/response JSON round-trips, including the
/// approximate-delta and selective-MaxRS variants.
#[test]
fn requests_and_responses_round_trip_through_json() {
    let requests = vec![
        QueryRequest::similar(sample_query(1)),
        QueryRequest::top_k(sample_query(2), 7),
        QueryRequest::batch(vec![sample_query(1), sample_query(2)]),
        QueryRequest::approximate(sample_query(3), 0.35),
        QueryRequest::max_rs(RegionSize::new(12.0, 9.0)),
        QueryRequest::max_rs_selective(
            RegionSize::new(12.0, 9.0),
            Selection::cat_in(0, vec![1, 3]),
        ),
        QueryRequest::similar(sample_query(4))
            .with_budget_ms(1_500)
            .with_backend(Backend::DsSearch),
    ];
    for request in &requests {
        let json = serde::json::to_string(request);
        let back: QueryRequest = serde::json::from_str(&json).unwrap();
        assert_eq!(&back, request, "request round trip failed: {json}");
    }

    // A full response — including stats and the MaxRS shape — survives
    // the wire, so results can be cached and replayed.
    let (ds, agg) = workload(200, 5);
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(10, 10)
        .build()
        .unwrap();
    for request in [
        QueryRequest::similar(sample_query(1)),
        QueryRequest::top_k(sample_query(2), 3),
        QueryRequest::max_rs_selective(RegionSize::new(20.0, 20.0), Selection::cat_equals(0, 0)),
    ] {
        let response = engine.submit(&request).unwrap();
        let json = serde::json::to_string(&response);
        let back: QueryResponse = serde::json::from_str(&json).unwrap();
        assert_eq!(back, response, "response round trip failed");
    }
}

/// Satellite: malformed payloads are rejected rather than mis-decoded.
#[test]
fn invalid_request_payloads_are_rejected() {
    // Unknown variant.
    assert!(serde::json::from_str::<QueryRequest>("{\"Frobnicate\":{}}").is_err());
    // Wrong payload type for a known variant.
    assert!(serde::json::from_str::<QueryRequest>("{\"TopK\":{\"query\":3,\"k\":1}}").is_err());
    // Structurally broken JSON.
    assert!(serde::json::from_str::<QueryRequest>("{\"Similar\":").is_err());
    // A bare string is not a data-carrying request.
    assert!(serde::json::from_str::<QueryRequest>("\"Similar\"").is_err());
    // k of the wrong type.
    assert!(serde::json::from_str::<QueryRequest>(
        "{\"TopK\":{\"query\":{\"size\":{\"width\":1.0,\"height\":1.0},\
         \"target\":[1.0],\"weights\":[1.0],\"metric\":\"L1\"},\"k\":\"three\"}}"
    )
    .is_err());

    // A deserialized-but-semantically-invalid request still fails at
    // submission, not silently.
    let (ds, agg) = workload(60, 9);
    let engine = AsrsEngine::builder(ds, agg).build().unwrap();
    let bad: QueryRequest = serde::json::from_str(
        "{\"Similar\":{\"query\":{\"size\":{\"width\":-4.0,\"height\":1.0},\
         \"target\":[1.0,1.0,1.0,1.0],\"weights\":[1.0,1.0,1.0,1.0],\"metric\":\"L1\"}}}",
    )
    .unwrap();
    assert!(matches!(
        engine.submit(&bad),
        Err(AsrsError::Query(QueryError::InvalidSize { .. }))
    ));
}

/// Requests with an exhausted budget abort with `DeadlineExceeded` on
/// every operation family.
#[test]
fn deadlines_abort_every_operation() {
    let (ds, agg) = workload(900, 17);
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(24, 24)
        .build()
        .unwrap();
    let expired = |req: QueryRequest| {
        matches!(
            engine.submit(&req.with_budget_ms(0)),
            Err(AsrsError::DeadlineExceeded {
                budget: Duration::ZERO
            })
        )
    };
    assert!(expired(QueryRequest::similar(sample_query(1))));
    assert!(expired(QueryRequest::top_k(sample_query(1), 3)));
    assert!(expired(QueryRequest::batch(vec![sample_query(1)])));
    assert!(expired(QueryRequest::max_rs(RegionSize::new(10.0, 10.0))));
}

/// Many cloned handles submitting from separate threads agree exactly
/// with the engine answering sequentially.
#[test]
fn concurrent_handles_agree_with_sequential_submission() {
    let (ds, agg) = workload(300, 23);
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(16, 16)
        .build()
        .unwrap();
    let queries: Vec<AsrsQuery> = (1..=8).map(sample_query).collect();
    let sequential: Vec<SearchResult> = queries.iter().map(|q| engine.search(q).unwrap()).collect();

    let handle = engine.handle();
    drop(engine); // handles keep the shared core alive on their own
    let concurrent: Vec<SearchResult> = std::thread::scope(|scope| {
        queries
            .iter()
            .map(|q| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let response = handle.submit(&QueryRequest::similar(q.clone())).unwrap();
                    response.results()[0].clone()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    for (a, b) in sequential.iter().zip(&concurrent) {
        assert_eq!(a.region, b.region);
        assert_eq!(a.anchor, b.anchor);
        assert_eq!(a.distance, b.distance);
    }
}
