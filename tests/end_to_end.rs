//! Full-pipeline scenarios: generator → aggregator → index → search →
//! result, including the case-study city and property-style randomised
//! equivalence checks (seeded loops; the offline build has no proptest).

use asrs_suite::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn case_study_city_ranks_marina_bay_above_bugis() {
    // Section 7.6: with a category-distribution aggregator, the "Orchard"
    // query region must consider "Marina Bay" more similar than "Bugis".
    let city = CityGenerator::default().generate(42);
    let ds = &city.dataset;
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();

    let orchard = city.district("Orchard").unwrap().rect;
    let marina = city.district("Marina Bay").unwrap().rect;
    let bugis = city.district("Bugis").unwrap().rect;

    let f_orchard = agg.aggregate_region(ds, &orchard);
    let f_marina = agg.aggregate_region(ds, &marina);
    let f_bugis = agg.aggregate_region(ds, &bugis);
    let w = Weights::uniform(agg.feature_dim());
    let d_marina = weighted_distance(&f_orchard, &f_marina, &w, DistanceMetric::L1);
    let d_bugis = weighted_distance(&f_orchard, &f_bugis, &w, DistanceMetric::L1);
    assert!(
        d_marina < d_bugis,
        "Marina Bay ({d_marina}) must be closer to Orchard than Bugis ({d_bugis})"
    );

    // The search itself must find a region at least as similar as Marina
    // Bay (it may legitimately find an even better one).
    let query = AsrsQuery::from_example_region(ds, &agg, &orchard).unwrap();
    let result = DsSearch::new(ds, &agg).search(&query).unwrap();
    assert!(result.distance <= d_marina + 1e-9);
}

#[test]
fn indexed_and_plain_search_agree_on_the_city() {
    let city = CityGenerator::default().generate(7);
    let ds = &city.dataset;
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    let orchard = city.district("Orchard").unwrap().rect;
    let query = AsrsQuery::from_example_region(ds, &agg, &orchard).unwrap();
    let plain = DsSearch::new(ds, &agg).search(&query).unwrap();
    let index = GridIndex::build(ds, &agg, 64, 64).unwrap();
    let indexed = GiDsSearch::new(ds, &agg, &index).search(&query).unwrap();
    assert!((plain.distance - indexed.distance).abs() < 1e-9);
}

#[test]
fn search_scales_through_the_full_pipeline() {
    // A smoke test at a larger cardinality: build, index, search, and check
    // internal consistency of the result and statistics.
    let ds = TweetGenerator::compact(12).generate(20_000, 5);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .unwrap();
    let index = GridIndex::build(&ds, &agg, 64, 64).unwrap();
    let query = AsrsQuery::new(
        RegionSize::new(40.0, 40.0),
        FeatureVector::new(vec![0.0, 0.0, 0.0, 0.0, 0.0, 60.0, 60.0]),
        Weights::new(vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.5, 0.5]),
    );
    let result = GiDsSearch::new(&ds, &agg, &index).search(&query).unwrap();
    let rep = agg.aggregate_region(&ds, &result.region);
    let recomputed = agg.distance(&rep, &query.target, &query.weights, query.metric);
    assert!((recomputed - result.distance).abs() < 1e-6);
    assert!(result.stats.index_cells_total == 64 * 64);
    assert!(result.stats.index_cells_searched <= result.stats.index_cells_total);
    assert!(result.stats.rectangles == 20_000);
}

/// Randomised end-to-end equivalence: DS-Search equals the exhaustive
/// oracle on arbitrary small instances (12 seeded cases).
#[test]
fn ds_search_is_exact_on_random_instances() {
    for case in 0u64..12 {
        let mut rng = SmallRng::seed_from_u64(9000 + case);
        let seed = rng.gen_range(0u64..5000);
        let n = rng.gen_range(5usize..45);
        let width = rng.gen_range(2.0..20.0);
        let height = rng.gen_range(2.0..20.0);
        let target_a = rng.gen_range(0.0..6.0);
        let target_b = rng.gen_range(0.0..6.0);
        let ds = UniformGenerator::default().generate(n, seed);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(width, height),
            FeatureVector::new(vec![target_a, target_b, target_a, target_b]),
            Weights::uniform(4),
        );
        let result = DsSearch::new(&ds, &agg).search(&query).unwrap();
        let oracle = naive::naive_best_region(&ds, &agg, &query).unwrap();
        assert!(
            (result.distance - oracle.distance).abs() < 1e-9,
            "seed {}: DS {} vs oracle {}",
            seed,
            result.distance,
            oracle.distance
        );
    }
}

/// Randomised MaxRS equivalence between the DS adaptation and OE
/// (12 seeded cases).
#[test]
fn maxrs_adaptation_is_exact_on_random_instances() {
    for case in 0u64..12 {
        let mut rng = SmallRng::seed_from_u64(9500 + case);
        let seed = rng.gen_range(0u64..5000);
        let n = rng.gen_range(5usize..60);
        let k = rng.gen_range(2.0..25.0);
        let ds = UniformGenerator::default().generate(n, seed);
        let size = RegionSize::new(k, k * 0.8);
        let ds_count = MaxRsSearch::new(&ds, size).search().unwrap().count;
        let oe_count = OptimalEnclosure::new(&ds, size).search().unwrap().count;
        assert_eq!(ds_count, oe_count, "seed {seed}");
    }
}
