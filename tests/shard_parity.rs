//! Differential parity harness for the sharded scatter-gather engine.
//!
//! The sharded executor promises: for every `QueryRequest`, the response of
//! `shards(k)` is byte-identical to the response of the single-shard
//! baseline `shards(1)` — outcomes, anchors, distances, representations,
//! counts and the reported backend all included.  Execution statistics are
//! exempt (they describe the decomposition that actually ran), which is
//! exactly what [`QueryResponse::stats_stripped`] encodes; the harness
//! serializes stripped responses and compares raw bytes.
//!
//! A second, weaker check runs against the classic *unsharded* engine: the
//! scatter must agree on the optimal distance / count (exactness), even
//! though the unsharded fast path may report a different equally-optimal
//! anchor for tied optima.

use asrs_suite::prelude::*;

const SHARD_COUNTS: [usize; 3] = [2, 4, 7];

/// A tiny seeded LCG so query placement sweeps deterministically without
/// depending on the vendored rand API.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

fn uniform_workload(n: usize, seed: u64) -> (Dataset, CompositeAggregator) {
    let ds = UniformGenerator::default().generate(n, seed);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    (ds, agg)
}

fn clustered_workload(n: usize, seed: u64) -> (Dataset, CompositeAggregator) {
    let ds = TweetGenerator::compact(8).generate(n, seed);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .unwrap();
    (ds, agg)
}

/// Every request variant the engine supports, parameterised by a seeded
/// sweep over sizes and targets.  Targets use fractional components so the
/// optimum distance is generically non-zero (plenty of count-vector ties
/// remain — that is the hard case the canonical tie-break must win).
fn request_pool(ds: &Dataset, agg: &CompositeAggregator, seed: u64) -> Vec<QueryRequest> {
    let dim = agg.feature_dim();
    let bbox = ds.bounding_box().expect("non-empty dataset");
    let mut lcg = Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1);
    let mut query = |frac: f64| -> AsrsQuery {
        let size = RegionSize::new(
            (bbox.width() * frac).max(1e-3),
            (bbox.height() * frac * lcg.in_range(0.6, 1.4)).max(1e-3),
        );
        let target: Vec<f64> = (0..dim).map(|_| lcg.in_range(0.0, 6.0)).collect();
        AsrsQuery::new(size, FeatureVector::new(target), Weights::uniform(dim))
    };
    let small = query(0.08);
    let medium = query(0.2);
    // Half-extent regions straddle every partition cut line.
    let straddling = query(0.5);
    let mut pool = vec![
        QueryRequest::similar(small.clone()),
        QueryRequest::similar(straddling.clone()),
        QueryRequest::top_k(medium.clone(), 3),
        QueryRequest::top_k(straddling.clone(), 1),
        QueryRequest::batch(vec![small.clone(), straddling.clone(), medium.clone()]),
        QueryRequest::approximate(medium.clone(), 0.25),
        QueryRequest::max_rs(RegionSize::new(
            (bbox.width() / 9.0).max(0.5),
            (bbox.height() / 11.0).max(0.5),
        )),
        QueryRequest::max_rs_selective(
            RegionSize::new(
                (bbox.width() / 7.0).max(0.5),
                (bbox.height() / 7.0).max(0.5),
            ),
            Selection::cat_equals(0, 1),
        ),
        // Configured envelopes: generous budget, forced backends.
        QueryRequest::similar(medium.clone()).with_budget_ms(120_000),
        QueryRequest::similar(small.clone()).with_backend(Backend::DsSearch),
        QueryRequest::top_k(medium, 2).with_backend(Backend::Naive),
    ];
    // A query-by-example reaches distance zero: the densest tie plateau
    // there is, and the canonical tie-break must still be shard-count
    // independent.
    let example = Rect::new(
        bbox.min_x + bbox.width() * 0.2,
        bbox.min_y + bbox.height() * 0.3,
        bbox.min_x + bbox.width() * 0.35,
        bbox.min_y + bbox.height() * 0.45,
    );
    if let Ok(by_example) = AsrsQuery::from_example_region(ds, agg, &example) {
        pool.push(QueryRequest::similar(by_example));
    }
    pool
}

fn sharded_engine(
    ds: &Dataset,
    agg: &CompositeAggregator,
    shards: usize,
    with_index: bool,
) -> AsrsEngine {
    let mut builder = AsrsEngine::builder(ds.clone(), agg.clone()).shards(shards);
    if with_index {
        builder = builder.build_index(16, 16);
    }
    builder.build().unwrap()
}

fn canonical_bytes(response: &QueryResponse) -> String {
    serde::json::to_string(&response.stats_stripped())
}

/// The tentpole assertion: byte-identical stripped responses between
/// `shards(1)` and every sharded count, over the whole request surface.
#[test]
fn sharded_responses_are_byte_identical_to_the_single_shard_baseline() {
    let workloads = [
        uniform_workload(240, 7),
        uniform_workload(150, 41),
        clustered_workload(200, 13),
    ];
    for (w, (ds, agg)) in workloads.iter().enumerate() {
        for with_index in [false, true] {
            let baseline = sharded_engine(ds, agg, 1, with_index);
            let requests = request_pool(ds, agg, 1000 + w as u64);
            let expected: Vec<String> = requests
                .iter()
                .map(|r| canonical_bytes(&baseline.submit(r).unwrap()))
                .collect();
            for &k in &SHARD_COUNTS {
                let sharded = sharded_engine(ds, agg, k, with_index);
                assert_eq!(sharded.shard_count(), k);
                for (request, expected) in requests.iter().zip(&expected) {
                    let response = sharded.submit(request).unwrap_or_else(|e| {
                        panic!("workload {w} shards {k} index {with_index}: {e}")
                    });
                    let got = canonical_bytes(&response);
                    assert_eq!(
                        &got,
                        expected,
                        "workload {w}, shards {k}, index {with_index}, \
                         request {:?} diverged",
                        request.operation_name()
                    );
                }
            }
        }
    }
}

/// Exactness against the classic unsharded engine: the scatter finds the
/// same optimal distance (and MaxRS count), even where tied anchors differ.
#[test]
fn sharded_optima_match_the_unsharded_engine() {
    let (ds, agg) = uniform_workload(220, 3);
    let unsharded = AsrsEngine::builder(ds.clone(), agg.clone())
        .build_index(16, 16)
        .build()
        .unwrap();
    let sharded = sharded_engine(&ds, &agg, 4, true);
    for request in request_pool(&ds, &agg, 77) {
        let classic = unsharded.submit(&request).unwrap();
        let scattered = sharded.submit(&request).unwrap();
        match (&classic.outcome, &scattered.outcome) {
            (QueryOutcome::Best(a), QueryOutcome::Best(b)) => {
                if request.operation_name() == "approximate" {
                    // The scatter answers approximate requests exactly;
                    // the unsharded fast path may stop within (1+δ).
                    assert!(b.distance <= a.distance + 1e-9);
                } else {
                    assert!(
                        (a.distance - b.distance).abs() < 1e-9,
                        "{}: {} vs {}",
                        request.operation_name(),
                        a.distance,
                        b.distance
                    );
                }
            }
            (QueryOutcome::Ranked(a), QueryOutcome::Ranked(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert!((x.distance - y.distance).abs() < 1e-9);
                }
            }
            (QueryOutcome::Batch(a), QueryOutcome::Batch(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert!((x.distance - y.distance).abs() < 1e-9);
                }
            }
            (QueryOutcome::MaxRs(a), QueryOutcome::MaxRs(b)) => {
                assert_eq!(a.count, b.count, "MaxRS count must agree");
                if request.operation_name() == "max-rs" {
                    // Unconstrained MaxRS: the reported count is the real
                    // strict containment count of the returned region.
                    assert_eq!(ds.count_strictly_in(&b.region), b.count);
                } else {
                    // Class-constrained: only selected objects count.
                    assert!(b.count <= ds.count_strictly_in(&b.region));
                }
            }
            (a, b) => panic!("outcome shapes diverged: {a:?} vs {b:?}"),
        }
    }
}

/// Degenerate datasets: duplicates, collinear points, more shards than
/// objects (some shards empty), and the empty dataset — all must keep the
/// parity guarantee and never panic.
#[test]
fn degenerate_datasets_keep_parity() {
    // All-duplicate points.
    let schema = Schema::new(vec![AttributeDef::new(
        "category",
        AttributeKind::categorical(3),
    )]);
    let mut b = DatasetBuilder::new(schema.clone());
    for i in 0..9 {
        b.push(5.0, 5.0, vec![AttrValue::Cat(i % 3)]);
    }
    let duplicates = b.build().unwrap();

    // Collinear points.
    let mut b = DatasetBuilder::new(schema.clone());
    for i in 0..11 {
        b.push(i as f64, 2.0, vec![AttrValue::Cat(i % 3)]);
    }
    let collinear = b.build().unwrap();

    // Fewer objects than shards.
    let mut b = DatasetBuilder::new(schema);
    for i in 0..5 {
        b.push(i as f64 * 3.0, i as f64, vec![AttrValue::Cat(i % 3)]);
    }
    let sparse = b.build().unwrap();

    for ds in [duplicates, collinear, sparse] {
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let baseline = sharded_engine(&ds, &agg, 1, false);
        let requests = request_pool(&ds, &agg, 5);
        for &k in &SHARD_COUNTS {
            let sharded = sharded_engine(&ds, &agg, k, false);
            // Every shard is accounted for: either its slab executed or
            // routing pruned it (no rectangle reaches an empty slab).
            let response = sharded
                .submit(&QueryRequest::similar(AsrsQuery::new(
                    RegionSize::new(1.0, 1.0),
                    FeatureVector::new(vec![0.4, 1.3, 0.7]),
                    Weights::uniform(3),
                )))
                .unwrap();
            assert_eq!(
                response.stats.shards_touched + response.stats.shards_pruned,
                k as u64,
                "shards {k} over {} objects",
                ds.len()
            );
            assert!(response.stats.shards_touched >= 1);
            for request in &requests {
                let a = canonical_bytes(&baseline.submit(request).unwrap());
                let b = canonical_bytes(&sharded.submit(request).unwrap());
                assert_eq!(a, b, "shards {k}, {}", request.operation_name());
            }
        }
    }

    // The empty dataset answers with the empty-region candidate whatever
    // the shard count.
    let empty = Dataset::new_unchecked(Schema::empty(), vec![]);
    let agg = CompositeAggregator::builder(empty.schema())
        .count(Selection::All)
        .build()
        .unwrap();
    let query = AsrsQuery::new(
        RegionSize::new(1.0, 1.0),
        FeatureVector::new(vec![2.0]),
        Weights::uniform(1),
    );
    let baseline = sharded_engine(&empty, &agg, 1, false);
    let a = baseline
        .submit(&QueryRequest::similar(query.clone()))
        .unwrap();
    assert_eq!(a.best().unwrap().distance, 2.0);
    for &k in &SHARD_COUNTS {
        let sharded = sharded_engine(&empty, &agg, k, false);
        let b = sharded
            .submit(&QueryRequest::similar(query.clone()))
            .unwrap();
        assert_eq!(canonical_bytes(&a), canonical_bytes(&b));
        // No rectangle reaches any slab: routing prunes every shard.
        assert_eq!(b.stats.shards_pruned, k as u64);
        assert_eq!(b.stats.shards_touched, 0);
    }
}

/// Regression test: a slab no *contributing* rectangle reaches used to be
/// dropped from the gather entirely, but its arrangement cells are still
/// candidates with the empty covering — and when the empty covering ties
/// the optimum, the dropped slab can hold the tie-break winner.  Selection
/// aggregators make this easy to hit: with contributing objects confined
/// to one corner and a zero target (optimum distance 0 everywhere empty),
/// shards whose slab holds no contributing rectangle must still offer
/// their empty-covering candidates or `shards(k)` diverges from
/// `shards(1)`.
#[test]
fn rect_free_slabs_still_offer_their_empty_covering_candidates() {
    let schema = Schema::new(vec![AttributeDef::new(
        "category",
        AttributeKind::categorical(2),
    )]);
    let mut b = DatasetBuilder::new(schema);
    // Non-contributing (cat 0) objects spread left and centre...
    for i in 0..12 {
        b.push(
            1.0 + 0.2 * i as f64,
            1.0 + 0.3 * i as f64,
            vec![AttrValue::Cat(0)],
        );
    }
    for i in 0..6 {
        b.push(
            50.0 + 0.4 * i as f64,
            2.0 + 0.5 * i as f64,
            vec![AttrValue::Cat(0)],
        );
    }
    // ...contributing (cat 1) objects only far right.
    for i in 0..8 {
        b.push(
            90.0 + 0.3 * i as f64,
            1.5 + 0.4 * i as f64,
            vec![AttrValue::Cat(1)],
        );
    }
    let ds = b.build().unwrap();
    let agg = CompositeAggregator::builder(ds.schema())
        .count(Selection::cat_equals(0, 1))
        .build()
        .unwrap();
    // Target 0: every cat-1-free region is optimal, so the tie plateau
    // spans the whole left of the extent — exactly where routing prunes.
    let request = QueryRequest::similar(AsrsQuery::new(
        RegionSize::new(2.0, 2.0),
        FeatureVector::new(vec![0.0]),
        Weights::uniform(1),
    ));
    let baseline = sharded_engine(&ds, &agg, 1, false);
    let expected = canonical_bytes(&baseline.submit(&request).unwrap());
    for &k in &[2usize, 3, 4, 7] {
        let sharded = sharded_engine(&ds, &agg, k, false);
        let response = sharded.submit(&request).unwrap();
        assert_eq!(
            canonical_bytes(&response),
            expected,
            "shards {k}: a rect-free slab dropped its tied candidates"
        );
    }
}

/// Error surfaces stay consistent across shard counts: invalid requests and
/// spent budgets fail with the same error variants the baseline reports.
#[test]
fn error_behaviour_is_shard_count_invariant() {
    let (ds, agg) = uniform_workload(120, 9);
    let bad = AsrsQuery::new(
        RegionSize::new(-2.0, 1.0),
        FeatureVector::new(vec![1.0; 4]),
        Weights::uniform(4),
    );
    let dim_mismatch = AsrsQuery::new(
        RegionSize::new(2.0, 1.0),
        FeatureVector::new(vec![1.0]),
        Weights::uniform(1),
    );
    let good = AsrsQuery::new(
        RegionSize::new(8.0, 8.0),
        FeatureVector::new(vec![1.2, 0.4, 2.3, 0.9]),
        Weights::uniform(4),
    );
    for k in [1, 2, 4, 7] {
        let engine = sharded_engine(&ds, &agg, k, true);
        assert!(matches!(
            engine.submit(&QueryRequest::similar(bad.clone())),
            Err(AsrsError::Query(_))
        ));
        assert!(matches!(
            engine.submit(&QueryRequest::similar(dim_mismatch.clone())),
            Err(AsrsError::Query(_))
        ));
        assert!(matches!(
            engine.submit(&QueryRequest::top_k(good.clone(), 0)),
            Err(AsrsError::InvalidTopK)
        ));
        assert!(matches!(
            engine.submit(&QueryRequest::max_rs(RegionSize::new(0.0, 1.0))),
            Err(AsrsError::InvalidRegionSize { .. })
        ));
        // A malformed δ must be rejected whatever the shard count — the
        // scatter answers approximate requests exactly, but acceptance of
        // a request cannot depend on the engine's shard configuration.
        assert!(matches!(
            engine.submit(&QueryRequest::approximate(good.clone(), -1.0)),
            Err(AsrsError::Config(ConfigError::InvalidDelta { .. }))
        ));
        assert!(matches!(
            engine.submit(&QueryRequest::approximate(good.clone(), f64::NAN)),
            Err(AsrsError::Config(ConfigError::InvalidDelta { .. }))
        ));
        assert!(matches!(
            engine.submit(&QueryRequest::similar(good.clone()).with_budget_ms(0)),
            Err(AsrsError::DeadlineExceeded { .. })
        ));
        // Forcing GI-DS works on indexed sharded engines (the planner
        // reads whole-dataset index geometry), and the plan's explain
        // names the scatter fan-out.
        let plan = engine
            .plan(&QueryRequest::similar(good.clone()).with_backend(Backend::GiDs))
            .unwrap();
        assert_eq!(plan.backend, Backend::GiDs);
        assert!(
            plan.explain().contains("fan-out"),
            "explain must name the fan-out: {}",
            plan.explain()
        );
        assert!(engine
            .submit(&QueryRequest::similar(good.clone()).with_backend(Backend::GiDs))
            .is_ok());
    }
}

/// Cache keys are derived from the request alone, so a response cached by
/// one engine replays byte-identically — statistics included — and the key
/// space is shard-count independent by construction.
#[test]
fn cache_keys_and_hits_are_shard_count_independent() {
    let (ds, agg) = uniform_workload(180, 21);
    let request = QueryRequest::similar(AsrsQuery::new(
        RegionSize::new(9.0, 7.0),
        FeatureVector::new(vec![2.3, 0.4, 1.1, 0.8]),
        Weights::uniform(4),
    ));
    // The canonical fingerprint is a pure function of the request.
    assert_eq!(request.cache_key(), request.cache_key());
    let mut engines: Vec<AsrsEngine> = Vec::new();
    for k in [1usize, 3] {
        let engine = AsrsEngine::builder(ds.clone(), agg.clone())
            .shards(k)
            .build_index(16, 16)
            .cache_capacity(8)
            .build()
            .unwrap();
        let cold = engine.submit(&request).unwrap();
        let warm = engine.submit(&request).unwrap();
        assert_eq!(
            serde::json::to_string(&cold),
            serde::json::to_string(&warm),
            "shards {k}: cache replay must be byte-identical, stats included"
        );
        let stats = engine.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1), "shards {k}");
        engines.push(engine);
    }
    // And the cached outcomes agree across shard counts too.
    let a = engines[0].submit(&request).unwrap();
    let b = engines[1].submit(&request).unwrap();
    assert_eq!(canonical_bytes(&a), canonical_bytes(&b));
}
