//! The (1+δ)-approximate extension (Section 6, Theorem 3): the returned
//! region's distance never exceeds (1+δ) times the optimum, and larger δ
//! never increases the work done.

use asrs_suite::prelude::*;

fn f1_query(size: RegionSize) -> AsrsQuery {
    AsrsQuery::new(
        size,
        FeatureVector::new(vec![0.0, 0.0, 0.0, 0.0, 0.0, 30.0, 30.0]),
        Weights::new(vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.5, 0.5]),
    )
}

#[test]
fn approximation_guarantee_holds_for_ds_search() {
    let ds = TweetGenerator::compact(6).generate(900, 3);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .unwrap();
    let query = f1_query(RegionSize::new(70.0, 70.0));
    let exact = DsSearch::new(&ds, &agg).search(&query).unwrap();
    for delta in [0.1, 0.2, 0.3, 0.4] {
        let approx =
            DsSearch::with_config(&ds, &agg, SearchConfig::new().with_delta(delta).unwrap())
                .search(&query)
                .unwrap();
        assert!(
            approx.distance <= (1.0 + delta) * exact.distance + 1e-9,
            "δ={delta}: approx {} vs optimal {}",
            approx.distance,
            exact.distance
        );
        assert!(
            approx.distance + 1e-9 >= exact.distance,
            "approximation cannot beat the optimum"
        );
    }
}

#[test]
fn approximation_guarantee_holds_for_gi_ds() {
    let ds = TweetGenerator::compact(8).generate(2500, 7);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .unwrap();
    let index = GridIndex::build(&ds, &agg, 48, 48).unwrap();
    let solver = GiDsSearch::new(&ds, &agg, &index);
    let query = f1_query(RegionSize::new(45.0, 45.0));
    let exact = solver.search(&query).unwrap();
    for delta in [0.1, 0.2, 0.3, 0.4] {
        let approx = solver.search_approx(&query, delta).unwrap();
        assert!(
            approx.distance <= (1.0 + delta) * exact.distance + 1e-9,
            "δ={delta}: approx {} vs optimal {}",
            approx.distance,
            exact.distance
        );
    }
}

#[test]
fn larger_delta_never_searches_more_index_cells() {
    let ds = TweetGenerator::compact(8).generate(2000, 19);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .unwrap();
    let index = GridIndex::build(&ds, &agg, 40, 40).unwrap();
    let solver = GiDsSearch::new(&ds, &agg, &index);
    let query = f1_query(RegionSize::new(55.0, 55.0));
    let mut searched = Vec::new();
    for delta in [0.0, 0.1, 0.2, 0.4] {
        let result = if delta == 0.0 {
            solver.search(&query).unwrap()
        } else {
            solver.search_approx(&query, delta).unwrap()
        };
        searched.push(result.stats.index_cells_searched);
    }
    for w in searched.windows(2) {
        assert!(
            w[1] <= w[0],
            "increasing δ must not increase searched cells: {searched:?}"
        );
    }
}

#[test]
fn quality_ratio_matches_table_2_shape() {
    // Table 2 reports quality = d_app / d_opt very close to 1 even for
    // large δ; verify the measured ratio stays within the guarantee and is
    // close to one on a clustered workload.
    let ds = TweetGenerator::compact(10).generate(3000, 31);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .unwrap();
    let index = GridIndex::build(&ds, &agg, 48, 48).unwrap();
    let solver = GiDsSearch::new(&ds, &agg, &index);
    let query = f1_query(RegionSize::new(80.0, 80.0));
    let exact = solver.search(&query).unwrap();
    assert!(
        exact.distance > 0.0,
        "a strict optimum keeps the ratio well-defined"
    );
    for delta in [0.1, 0.4] {
        let approx = solver.search_approx(&query, delta).unwrap();
        let quality = approx.distance / exact.distance;
        assert!(quality >= 1.0 - 1e-9);
        assert!(quality <= 1.0 + delta + 1e-9);
    }
}

#[test]
fn zero_delta_is_exactly_the_exact_algorithm() {
    let ds = UniformGenerator::default().generate(300, 2);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    let query = AsrsQuery::new(
        RegionSize::new(12.0, 12.0),
        FeatureVector::new(vec![4.0, 4.0, 4.0, 4.0]),
        Weights::uniform(4),
    );
    let exact = DsSearch::new(&ds, &agg).search(&query).unwrap();
    let zero_delta = DsSearch::with_config(&ds, &agg, SearchConfig::new().with_delta(0.0).unwrap())
        .search(&query)
        .unwrap();
    assert_eq!(exact.distance, zero_delta.distance);
}
