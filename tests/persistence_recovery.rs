//! Crash-recovery parity harness for the persistence subsystem.
//!
//! The promise under test: an engine that dies — cleanly or mid-write —
//! and is reopened from its snapshot + write-ahead log answers
//! **byte-identically** to an engine that survived the same mutation
//! history in memory.  Same comparison form as `tests/mutation_parity.rs`
//! ([`QueryResponse::stats_stripped`] serialized to JSON, compared as raw
//! bytes), same shard sweep {0, 1, 2, 4}, query-result cache enabled on
//! the persistent engine throughout (generation stamping must hold across
//! a reboot: the restored engine resumes at the crashed engine's
//! generation, so warm hits can never replay a pre-crash answer for a
//! post-crash state).
//!
//! Every append the engine acknowledged is fsync'd to the log *before*
//! its generation publishes, so dropping the engine loses nothing; the
//! torn-tail test covers the harsher case of a frame cut mid-write, which
//! must cost exactly the unacknowledged mutation and nothing else.

use asrs_suite::prelude::*;
use std::path::PathBuf;

/// Shard configurations under test: the classic single engine plus the
/// scatter-gather engine at 1, 2 and 4 shards.
const SHARD_CONFIGS: [usize; 4] = [0, 1, 2, 4];

/// A tiny seeded LCG so the interleavings sweep deterministically without
/// depending on the vendored rand API.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

fn workload(n: usize, seed: u64) -> (Dataset, CompositeAggregator) {
    let ds = UniformGenerator::default().generate(n, seed);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    (ds, agg)
}

/// A pool of requests spanning the operation surface, seeded.
fn request_pool(ds: &Dataset, agg: &CompositeAggregator, seed: u64) -> Vec<QueryRequest> {
    let dim = agg.feature_dim();
    let bbox = ds.bounding_box().expect("non-empty dataset");
    let mut lcg = Lcg::new(seed);
    let mut query = |frac: f64| -> AsrsQuery {
        let size = RegionSize::new(
            (bbox.width() * frac).max(1e-3),
            (bbox.height() * frac * lcg.in_range(0.6, 1.4)).max(1e-3),
        );
        let target: Vec<f64> = (0..dim).map(|_| lcg.in_range(-2.0, 6.0)).collect();
        AsrsQuery::new(size, FeatureVector::new(target), Weights::uniform(dim))
    };
    let small = query(0.08);
    let medium = query(0.25);
    vec![
        QueryRequest::similar(small.clone()),
        QueryRequest::top_k(medium.clone(), 3),
        QueryRequest::batch(vec![small, medium.clone()]),
        QueryRequest::approximate(medium, 0.25),
        QueryRequest::max_rs(RegionSize::new(
            (bbox.width() / 9.0).max(0.5),
            (bbox.height() / 11.0).max(0.5),
        )),
    ]
}

fn canonical_bytes(response: &QueryResponse) -> String {
    serde::json::to_string(&response.stats_stripped())
}

fn engine_builder(
    ds: Dataset,
    agg: CompositeAggregator,
    shards: usize,
    cache: usize,
) -> EngineBuilder {
    let mut builder = AsrsEngine::builder(ds, agg)
        .build_index(12, 12)
        .cache_capacity(cache);
    if shards > 0 {
        builder = builder.shards(shards);
    }
    builder
}

fn temp_dir(tag: &str, shards: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "asrs-recovery-{tag}-s{shards}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One deterministic mutation drawn from the seeded stream, applied to
/// *both* engines (the persistent one and the in-memory survivor).
fn apply_mutation_to_both(
    persistent: &AsrsEngine,
    survivor: &AsrsEngine,
    lcg: &mut Lcg,
    bbox: &Rect,
    live_ids: &mut Vec<u64>,
    next_id: &mut u64,
    template: &SpatialObject,
) {
    match lcg.pick(8) {
        0 | 1 if !live_ids.is_empty() => {
            let idx = lcg.pick(live_ids.len());
            let id = live_ids.swap_remove(idx);
            persistent.remove(id).unwrap();
            survivor.remove(id).unwrap();
        }
        // Zero-TTL append + immediate sweep: the expiry travels the WAL as
        // an `Expire` frame and must replay as its outcome (a removal).
        2 => {
            let id = *next_id;
            *next_id += 1;
            let object = SpatialObject::new(
                id,
                Point::new(
                    bbox.min_x + bbox.width() * lcg.next_f64(),
                    bbox.min_y + bbox.height() * lcg.next_f64(),
                ),
                template.values.clone(),
            );
            for engine in [persistent, survivor] {
                engine
                    .append_with_ttl(object.clone(), std::time::Duration::ZERO)
                    .unwrap();
                let receipts = engine.sweep_expired().unwrap();
                assert_eq!(receipts.len(), 1, "the zero-TTL object expires at once");
            }
        }
        _ => {
            let id = *next_id;
            *next_id += 1;
            let object = SpatialObject::new(
                id,
                Point::new(
                    bbox.min_x + bbox.width() * lcg.next_f64(),
                    bbox.min_y + bbox.height() * lcg.next_f64(),
                ),
                template.values.clone(),
            );
            persistent.append(object.clone()).unwrap();
            survivor.append(object).unwrap();
            live_ids.push(id);
        }
    }
}

fn assert_engines_agree(
    reopened: &AsrsEngine,
    survivor: &AsrsEngine,
    agg: &CompositeAggregator,
    seed: u64,
    context: &str,
) {
    assert_eq!(
        reopened.generation(),
        survivor.generation(),
        "{context}: the reopened engine must resume at the survivor's generation"
    );
    assert!(
        reopened.dataset().objects().eq(survivor.dataset().objects()),
        "{context}: datasets diverged"
    );
    for request in request_pool(&reopened.dataset(), agg, seed) {
        let expected = canonical_bytes(&survivor.submit(&request).unwrap());
        let cold = canonical_bytes(&reopened.submit(&request).unwrap());
        assert_eq!(
            cold,
            expected,
            "{context}, {}: reopened engine diverged from the survivor",
            request.operation_name()
        );
        // Warm resubmission through the reopened engine's cache.
        let warm = canonical_bytes(&reopened.submit(&request).unwrap());
        assert_eq!(
            warm,
            expected,
            "{context}, {}: warm submission replayed a stale generation",
            request.operation_name()
        );
    }
}

/// The tentpole assertion: drop the persistent engine at every checkpoint
/// of a seeded interleaving, reopen from snapshot + WAL, and require
/// byte-identical responses vs an engine that survived the same history in
/// memory — across shard counts {0, 1, 2, 4}, with a mid-stream snapshot
/// so later checkpoints recover from snapshot *plus* log tail.
#[test]
fn crashed_engines_reopen_byte_identical_to_survivors() {
    for shards in SHARD_CONFIGS {
        let (ds, agg) = workload(150, 41);
        let bbox = ds.bounding_box().unwrap();
        let template = ds.object(0).clone();
        let dir = temp_dir("crash", shards);

        let survivor = engine_builder(ds.clone(), agg.clone(), shards, 0)
            .build()
            .unwrap();
        let mut persistent = engine_builder(ds.clone(), agg.clone(), shards, 64)
            .persist_dir(&dir)
            .build()
            .unwrap();
        assert!(persistent.boot().cold_start);

        let mut lcg = Lcg::new(7000 + shards as u64);
        let mut live_ids: Vec<u64> = Vec::new();
        let mut next_id = 2_000_000u64;
        for checkpoint in 0..3 {
            for _ in 0..6 {
                apply_mutation_to_both(
                    persistent.engine(),
                    &survivor,
                    &mut lcg,
                    &bbox,
                    &mut live_ids,
                    &mut next_id,
                    &template,
                );
            }
            // Mid-stream snapshot at the second checkpoint: recovery after
            // it must stack the WAL tail on top of the newer snapshot.
            if checkpoint == 1 {
                let report = persistent.snapshot().unwrap();
                assert_eq!(report.generation, persistent.engine().generation());
                assert_eq!(report.wal_entries, 0, "snapshot compacts the log");
            }

            // "Kill" the engine (drop it) and reopen from disk.  Every
            // acknowledged mutation was fsync'd before its generation
            // published, so the reopened engine must not lose any of them.
            drop(persistent);
            persistent = engine_builder(ds.clone(), agg.clone(), shards, 64)
                .persist_dir(&dir)
                .build()
                .unwrap();
            assert!(!persistent.boot().cold_start);
            assert_engines_agree(
                persistent.engine(),
                &survivor,
                &agg,
                90 + checkpoint,
                &format!("shards {shards}, checkpoint {checkpoint}"),
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A WAL frame cut mid-write (the crash artifact fsync cannot prevent)
/// must cost exactly the torn mutation: the reopened engine matches a
/// survivor that never applied it, and keeps accepting mutations.
#[test]
fn torn_wal_tail_loses_only_the_unacknowledged_mutation() {
    for shards in [0usize, 2] {
        let (ds, agg) = workload(120, 43);
        let bbox = ds.bounding_box().unwrap();
        let template = ds.object(0).clone();
        let dir = temp_dir("torn", shards);

        let survivor = engine_builder(ds.clone(), agg.clone(), shards, 0)
            .build()
            .unwrap();
        let persistent = engine_builder(ds.clone(), agg.clone(), shards, 32)
            .persist_dir(&dir)
            .build()
            .unwrap();

        // Three mutations applied to both, one more applied only to the
        // persistent engine — its frame is then torn in half on disk.
        let mut lcg = Lcg::new(99);
        let mut ids = Vec::new();
        for i in 0..4u64 {
            let object = SpatialObject::new(
                3_000_000 + i,
                Point::new(bbox.min_x + 1.0 + i as f64, bbox.min_y + 2.0 + i as f64),
                template.values.clone(),
            );
            persistent.engine().append(object.clone()).unwrap();
            if i < 3 {
                survivor.append(object).unwrap();
                ids.push(3_000_000 + i);
            }
        }
        let _ = lcg.next_u64();
        drop(persistent);

        let wal_path = dir.join("wal.log");
        let full = std::fs::metadata(&wal_path).unwrap().len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap();
        file.set_len(full - 7).unwrap();
        drop(file);

        let reopened = engine_builder(ds.clone(), agg.clone(), shards, 32)
            .persist_dir(&dir)
            .build()
            .unwrap();
        assert_eq!(
            reopened.boot().replayed_entries,
            3,
            "shards {shards}: the torn fourth frame must not replay"
        );
        assert!(reopened.boot().wal_truncated_bytes > 0);
        assert_engines_agree(
            reopened.engine(),
            &survivor,
            &agg,
            7,
            &format!("shards {shards}, torn tail"),
        );

        // The log is live again after the truncation.
        let object = SpatialObject::new(
            3_000_100,
            Point::new(bbox.min_x + 9.0, bbox.min_y + 9.0),
            template.values.clone(),
        );
        reopened.engine().append(object.clone()).unwrap();
        survivor.append(object).unwrap();
        assert_eq!(
            reopened.engine().generation(),
            survivor.generation(),
            "shards {shards}: post-recovery mutations stay aligned"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Snapshot round-trip without any WAL tail: snapshot a mutated engine,
/// reopen, and require byte identity plus zero replayed frames (the boot
/// must come from the snapshot alone, not a rebuild).
#[test]
fn snapshot_round_trip_restores_without_replay() {
    for shards in SHARD_CONFIGS {
        let (ds, agg) = workload(140, 47);
        let bbox = ds.bounding_box().unwrap();
        let template = ds.object(0).clone();
        let dir = temp_dir("roundtrip", shards);

        let survivor = engine_builder(ds.clone(), agg.clone(), shards, 0)
            .build()
            .unwrap();
        let persistent = engine_builder(ds.clone(), agg.clone(), shards, 64)
            .persist_dir(&dir)
            .build()
            .unwrap();
        let mut lcg = Lcg::new(1234);
        let mut live_ids = Vec::new();
        let mut next_id = 4_000_000u64;
        for _ in 0..10 {
            apply_mutation_to_both(
                persistent.engine(),
                &survivor,
                &mut lcg,
                &bbox,
                &mut live_ids,
                &mut next_id,
                &template,
            );
        }
        persistent.snapshot().unwrap();
        drop(persistent);

        let reopened = engine_builder(ds.clone(), agg.clone(), shards, 64)
            .persist_dir(&dir)
            .build()
            .unwrap();
        assert_eq!(
            reopened.boot().replayed_entries,
            0,
            "shards {shards}: a fresh snapshot leaves nothing to replay"
        );
        assert_eq!(
            reopened.boot().snapshot_generation,
            Some(survivor.generation())
        );
        assert_engines_agree(
            reopened.engine(),
            &survivor,
            &agg,
            11,
            &format!("shards {shards}, round trip"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Group-committed batches must survive a crash: a history containing
/// `append_batch` payloads and a multi-expiry sweep — several WAL frames
/// per generation — reopens byte-identical to the in-memory survivor,
/// with the generation counter landing on the *batch* count, not the
/// frame count.
#[test]
fn batched_generations_replay_as_batches() {
    for shards in SHARD_CONFIGS {
        let (ds, agg) = workload(130, 59);
        let bbox = ds.bounding_box().unwrap();
        let template = ds.object(0).clone();
        let dir = temp_dir("batched", shards);

        let survivor = engine_builder(ds.clone(), agg.clone(), shards, 0)
            .build()
            .unwrap();
        let persistent = engine_builder(ds.clone(), agg.clone(), shards, 64)
            .persist_dir(&dir)
            .build()
            .unwrap();

        let mut lcg = Lcg::new(5500 + shards as u64);
        let mut frames = 0u64;
        // Two bulk payloads, an interleaved solo append, and a sweep that
        // expires three TTLs at once — four published generations, many
        // more WAL frames.
        for round in 0..2u64 {
            let payload: Vec<(SpatialObject, Option<std::time::Duration>)> = (0..6u64)
                .map(|i| {
                    (
                        SpatialObject::new(
                            5_000_000 + round * 100 + i,
                            Point::new(
                                bbox.min_x + bbox.width() * lcg.next_f64(),
                                bbox.min_y + bbox.height() * lcg.next_f64(),
                            ),
                            template.values.clone(),
                        ),
                        None,
                    )
                })
                .collect();
            for engine in [persistent.engine(), &survivor] {
                let receipts = engine.append_batch(payload.clone()).unwrap();
                assert_eq!(receipts.len(), 6);
            }
            frames += 6;
        }
        // One batch arms all three TTLs: armed by separate commits, each
        // later commit would piggyback the earlier (already-due) expiries
        // and leave the sweep below with only one.
        let ttl_payload: Vec<(SpatialObject, Option<std::time::Duration>)> = (0..3u64)
            .map(|i| {
                (
                    SpatialObject::new(
                        5_000_500 + i,
                        Point::new(
                            bbox.min_x + bbox.width() * 0.25 * (i as f64 + 0.5),
                            bbox.min_y + bbox.height() * 0.4,
                        ),
                        template.values.clone(),
                    ),
                    Some(std::time::Duration::ZERO),
                )
            })
            .collect();
        for engine in [persistent.engine(), &survivor] {
            let receipts = engine.append_batch(ttl_payload.clone()).unwrap();
            assert_eq!(receipts.len(), 3);
        }
        frames += 3;
        for engine in [persistent.engine(), &survivor] {
            let receipts = engine.sweep_expired().unwrap();
            assert_eq!(receipts.len(), 3, "all three TTLs expire in one sweep");
        }
        frames += 3;
        assert_eq!(
            persistent.engine().generation(),
            survivor.generation(),
            "shards {shards}: both engines publish the same batch count"
        );
        assert!(
            persistent.engine().generation() < frames,
            "shards {shards}: batches fold more than one frame per generation"
        );

        drop(persistent);
        let reopened = engine_builder(ds.clone(), agg.clone(), shards, 64)
            .persist_dir(&dir)
            .build()
            .unwrap();
        assert_eq!(
            reopened.boot().replayed_entries,
            frames,
            "shards {shards}: every frame of every batch replays"
        );
        assert_engines_agree(
            reopened.engine(),
            &survivor,
            &agg,
            17,
            &format!("shards {shards}, batched history"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The harshest batch-crash window: the WAL holds a whole batch — written
/// and fsync'd as one run of same-generation frames — but the engine died
/// before publishing it.  Reboot must replay the run as one atomic batch,
/// landing exactly one generation ahead, byte-identical to a survivor
/// that committed the batch normally.
#[test]
fn a_kill_between_batch_fsync_and_publish_replays_the_whole_batch() {
    for shards in [0usize, 2] {
        let (ds, agg) = workload(110, 67);
        let bbox = ds.bounding_box().unwrap();
        let template = ds.object(0).clone();
        let dir = temp_dir("fsync-gap", shards);

        let survivor = engine_builder(ds.clone(), agg.clone(), shards, 0)
            .build()
            .unwrap();
        let persistent = engine_builder(ds.clone(), agg.clone(), shards, 32)
            .persist_dir(&dir)
            .build()
            .unwrap();

        // Two acknowledged solo mutations, then the crash.
        let mut payload = Vec::new();
        for i in 0..2u64 {
            let object = SpatialObject::new(
                6_000_000 + i,
                Point::new(bbox.min_x + 2.0 + i as f64, bbox.min_y + 3.0),
                template.values.clone(),
            );
            persistent.engine().append(object.clone()).unwrap();
            survivor.append(object).unwrap();
        }
        for i in 0..4u64 {
            payload.push(SpatialObject::new(
                6_000_100 + i,
                Point::new(
                    bbox.min_x + bbox.width() * 0.2 * (i as f64 + 0.5),
                    bbox.min_y + bbox.height() * 0.6,
                ),
                template.values.clone(),
            ));
        }
        let at = persistent.engine().generation();
        drop(persistent);

        // Re-create the exact on-disk state of a mutator killed after the
        // batch fsync but before the epoch swap: the log gains one fsync'd
        // run of same-generation frames that no published core reflects.
        let (wal, _) = Wal::open(&dir.join("wal.log")).unwrap();
        let mutations: Vec<Mutation> = payload
            .iter()
            .map(|o| Mutation::Append { object: o.clone() })
            .collect();
        wal.append_batch(at + 1, &mutations).unwrap();
        drop(wal);

        // The survivor commits the same batch the normal way.
        let receipts = survivor
            .append_batch(payload.iter().map(|o| (o.clone(), None)).collect())
            .unwrap();
        assert_eq!(receipts.len(), 4);
        assert_eq!(survivor.generation(), at + 1);

        let reopened = engine_builder(ds.clone(), agg.clone(), shards, 32)
            .persist_dir(&dir)
            .build()
            .unwrap();
        assert_eq!(
            reopened.boot().boot_generation,
            at + 1,
            "shards {shards}: the whole run replays as one generation"
        );
        assert_engines_agree(
            reopened.engine(),
            &survivor,
            &agg,
            19,
            &format!("shards {shards}, fsync-publish gap"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Restore refuses a topology change: a snapshot taken at one shard count
/// must not silently restore into a builder configured for another.
#[test]
fn restore_rejects_a_mismatched_shard_count() {
    let (ds, agg) = workload(100, 53);
    let dir = temp_dir("mismatch", 2);
    let persistent = engine_builder(ds.clone(), agg.clone(), 2, 0)
        .persist_dir(&dir)
        .build()
        .unwrap();
    drop(persistent);
    match engine_builder(ds, agg, 4, 0).persist_dir(&dir).build() {
        Err(PersistError::Engine(AsrsError::Persistence { message })) => {
            assert!(message.contains("shard"), "{message}");
        }
        other => panic!("expected a shard-count rejection, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
