//! The `AsrsEngine` facade: backend parity across strategies, top-k
//! ranking, thread-parallel batching, MaxRS routing and boundary
//! validation.

use asrs_suite::prelude::*;

/// A shared workload: clustered tweets with the paper's F1-style
/// day-of-week aggregator plus a few hand-picked queries.
fn workload(n: usize, seed: u64) -> (Dataset, CompositeAggregator, Vec<AsrsQuery>) {
    let ds = TweetGenerator::compact(5).generate(n, seed);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .unwrap();
    let queries = vec![
        AsrsQuery::new(
            RegionSize::new(100.0, 100.0),
            FeatureVector::new(vec![0.0, 0.0, 0.0, 0.0, 0.0, 5.0, 5.0]),
            Weights::new(vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.5, 0.5]),
        ),
        AsrsQuery::new(
            RegionSize::new(150.0, 120.0),
            FeatureVector::new(vec![2.0, 2.0, 2.0, 2.0, 2.0, 0.0, 0.0]),
            Weights::uniform(7),
        ),
        AsrsQuery::new(
            RegionSize::new(60.0, 60.0),
            FeatureVector::new(vec![1.0, 0.0, 1.0, 0.0, 1.0, 3.0, 3.0]),
            Weights::uniform(7),
        ),
    ];
    (ds, agg, queries)
}

fn engine_with(strategy: Strategy, ds: &Dataset, agg: &CompositeAggregator) -> AsrsEngine {
    let mut builder = AsrsEngine::builder(ds.clone(), agg.clone()).strategy(strategy);
    if matches!(strategy, Strategy::GiDs) {
        builder = builder.build_index(24, 24);
    }
    builder.build().unwrap()
}

#[test]
fn every_strategy_returns_the_same_optimal_distance() {
    // The naive oracle is O(n²) probes, so keep the shared workload small;
    // it is still large enough that DS-Search prunes and splits.
    let (ds, agg, queries) = workload(90, 41);
    let engines: Vec<(Strategy, AsrsEngine)> =
        [Strategy::DsSearch, Strategy::GiDs, Strategy::Naive]
            .into_iter()
            .map(|s| (s, engine_with(s, &ds, &agg)))
            .collect();
    for (qi, query) in queries.iter().enumerate() {
        let reference = engines[0].1.search(query).unwrap();
        for (strategy, engine) in &engines {
            let result = engine.search(query).unwrap();
            assert!(
                (result.distance - reference.distance).abs() < 1e-9,
                "query {qi}: {strategy:?} found {} but DS-Search found {}",
                result.distance,
                reference.distance
            );
            // Every backend's answer must be internally consistent.
            let rep = agg.aggregate_region(&ds, &result.region);
            let d = agg.distance(&rep, &query.target, &query.weights, query.metric);
            assert!((d - result.distance).abs() < 1e-9);
        }
    }
}

#[test]
fn auto_strategy_matches_the_explicit_backends() {
    let (ds, agg, queries) = workload(600, 17);
    let auto_plain = AsrsEngine::builder(ds.clone(), agg.clone())
        .build()
        .unwrap();
    let auto_indexed = AsrsEngine::builder(ds.clone(), agg.clone())
        .build_index(32, 32)
        .build()
        .unwrap();
    assert_eq!(auto_plain.backend_name(), "ds-search");
    assert_eq!(auto_indexed.backend_name(), "gi-ds");
    for query in &queries {
        let a = auto_plain.search(query).unwrap();
        let b = auto_indexed.search(query).unwrap();
        assert!((a.distance - b.distance).abs() < 1e-9);
    }
}

#[test]
fn top_k_distances_are_monotone_in_k() {
    let (ds, agg, queries) = workload(300, 23);
    for strategy in [Strategy::DsSearch, Strategy::GiDs] {
        let engine = engine_with(strategy, &ds, &agg);
        let query = &queries[0];
        let mut previous: Vec<SearchResult> = Vec::new();
        for k in 1..=6 {
            let top = engine.search_top_k(query, k).unwrap();
            assert!(!top.is_empty() && top.len() <= k);
            // Distances non-decreasing within one answer...
            for pair in top.windows(2) {
                assert!(
                    pair[0].distance <= pair[1].distance + 1e-12,
                    "{strategy:?}: top-k must be sorted"
                );
                assert_ne!(pair[0].anchor, pair[1].anchor, "anchors must be distinct");
            }
            // ...and stable as k grows: the first |previous| entries keep
            // their distances (a larger k never improves an earlier rank).
            for (p, t) in previous.iter().zip(&top) {
                assert!(
                    (p.distance - t.distance).abs() < 1e-9,
                    "{strategy:?}: rank distances must not change when k grows"
                );
            }
            previous = top;
        }
    }
}

#[test]
fn top_k_agrees_with_the_naive_oracle_on_distances() {
    // On a small instance the k best distances of DS-Search must match the
    // exhaustive enumeration's k best (anchors may differ inside ties).
    let (ds, agg, queries) = workload(60, 29);
    let ds_engine = engine_with(Strategy::DsSearch, &ds, &agg);
    let naive_engine = engine_with(Strategy::Naive, &ds, &agg);
    for query in &queries {
        let a = ds_engine.search_top_k(query, 4).unwrap();
        let b = naive_engine.search_top_k(query, 4).unwrap();
        assert_eq!(a.len(), b.len());
        assert!(
            (a[0].distance - b[0].distance).abs() < 1e-9,
            "optimum must agree: {} vs {}",
            a[0].distance,
            b[0].distance
        );
    }
}

#[test]
fn search_batch_is_order_preserving_and_parallel_safe() {
    let (ds, agg, mut queries) = workload(800, 31);
    // Widen the batch so several workers engage.
    for k in 2..10u32 {
        queries.push(AsrsQuery::new(
            RegionSize::new(40.0 + 10.0 * k as f64, 80.0),
            FeatureVector::new(vec![k as f64, 0.0, 0.0, 1.0, 0.0, 2.0, 2.0]),
            Weights::uniform(7),
        ));
    }
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(32, 32)
        .build()
        .unwrap();
    let batch = engine.search_batch(&queries).unwrap();
    assert_eq!(batch.len(), queries.len());
    for (query, result) in queries.iter().zip(&batch) {
        let sequential = engine.search(query).unwrap();
        assert!(
            (sequential.distance - result.distance).abs() < 1e-9,
            "batch answers must match sequential answers in query order"
        );
    }
}

#[test]
fn sweep_baseline_plugs_in_as_an_external_backend() {
    let (ds, agg, queries) = workload(120, 37);
    let engine = AsrsEngine::builder(ds.clone(), agg.clone())
        .build()
        .unwrap();
    let (sweep_ds, sweep_agg) = (engine.dataset(), engine.aggregator());
    let sweep = SweepBase::new(&sweep_ds, &sweep_agg);
    for query in &queries {
        let via_engine = engine.search_with(&sweep, query).unwrap();
        let direct = engine.search(query).unwrap();
        assert!(
            (via_engine.distance - direct.distance).abs() < 1e-9,
            "sweep-base backend must agree with DS-Search"
        );
    }
    assert_eq!(SearchAlgorithm::name(&sweep), "sweep-base");
}

#[test]
fn maxrs_through_the_facade_matches_the_oe_baseline() {
    let (ds, agg, _) = workload(400, 43);
    let engine = AsrsEngine::builder(ds.clone(), agg).build().unwrap();
    let size = RegionSize::new(90.0, 90.0);
    let facade = engine.max_rs(size).unwrap();
    let oe = OptimalEnclosure::new(&ds, size).search().unwrap();
    assert_eq!(facade.count, oe.count);
    assert_eq!(ds.count_strictly_in(&facade.region), facade.count);
}

#[test]
fn engine_boundary_rejects_malformed_queries_and_configs() {
    let (ds, agg, queries) = workload(50, 47);

    // Invalid config surfaces at build time.
    let bad = SearchConfig {
        nrows: 1,
        ..SearchConfig::default()
    };
    assert!(matches!(
        AsrsEngine::builder(ds.clone(), agg.clone())
            .config(bad)
            .build(),
        Err(AsrsError::Config(ConfigError::GridTooCoarse { .. }))
    ));

    // GI-DS without an index surfaces at build time.
    assert!(matches!(
        AsrsEngine::builder(ds.clone(), agg.clone())
            .strategy(Strategy::GiDs)
            .build(),
        Err(AsrsError::IndexRequired { .. })
    ));

    let engine = AsrsEngine::builder(ds, agg).build().unwrap();

    // Dimension mismatch.
    let bad_dim = AsrsQuery::new(
        RegionSize::new(10.0, 10.0),
        FeatureVector::new(vec![1.0]),
        Weights::uniform(1),
    );
    assert!(matches!(
        engine.search(&bad_dim),
        Err(AsrsError::Query(QueryError::TargetDimensionMismatch { .. }))
    ));

    // Degenerate size.
    let bad_size = AsrsQuery::new(
        RegionSize::new(0.0, 10.0),
        FeatureVector::zeros(7),
        Weights::uniform(7),
    );
    assert!(matches!(
        engine.search(&bad_size),
        Err(AsrsError::Query(QueryError::InvalidSize { .. }))
    ));

    // Negative weight (constructed via the raw tuple field, since the
    // checked constructors refuse it).
    let bad_weights = AsrsQuery::new(
        RegionSize::new(10.0, 10.0),
        FeatureVector::zeros(7),
        Weights(vec![-1.0; 7]),
    );
    assert!(matches!(
        engine.search(&bad_weights),
        Err(AsrsError::Query(QueryError::InvalidWeights))
    ));

    // k = 0 and a bad query inside a batch.
    assert!(matches!(
        engine.search_top_k(&queries[0], 0),
        Err(AsrsError::InvalidTopK)
    ));
    assert!(engine.search_batch(&[queries[0].clone(), bad_dim]).is_err());
}
