//! End-to-end checks of the aggregation pipeline against the paper's
//! worked examples and the synthetic workload generators.

use asrs_suite::prelude::*;

/// Builds the apartment-hunting schema of the paper's Example 1 / Fig. 1.
fn apartment_schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new(
            "category",
            AttributeKind::categorical_labeled(vec![
                "Apartment",
                "Supermarket",
                "Restaurant",
                "Bus stop",
            ]),
        ),
        AttributeDef::new("price", AttributeKind::numeric(0.0, 10.0)),
    ])
}

#[test]
fn paper_examples_2_3_and_4_reproduce() {
    // Build r_q, r_1 and r_2 with the aggregate representations of the
    // paper's Example 4 and verify the distances 1.15 and 4.15.
    let schema = apartment_schema();
    let agg = CompositeAggregator::builder(&schema)
        .distribution("category", Selection::All)
        .average("price", Selection::cat_equals(0, 0))
        .build()
        .unwrap();

    let mut b = DatasetBuilder::new(schema);
    // r_q objects (region [0, 10) x [0, 10)).
    b.push(1.0, 1.0, vec![AttrValue::Cat(0), AttrValue::Num(2.0)]);
    b.push(2.0, 2.0, vec![AttrValue::Cat(0), AttrValue::Num(1.5)]);
    b.push(3.0, 3.0, vec![AttrValue::Cat(1), AttrValue::Num(0.0)]);
    b.push(4.0, 4.0, vec![AttrValue::Cat(2), AttrValue::Num(0.0)]);
    b.push(5.0, 5.0, vec![AttrValue::Cat(3), AttrValue::Num(0.0)]);
    // r_1 objects (region [100, 110) x [0, 10)): representation (3,1,1,1,1.6).
    for (i, price) in [1.2, 1.6, 2.0].iter().enumerate() {
        b.push(
            101.0 + i as f64,
            1.0,
            vec![AttrValue::Cat(0), AttrValue::Num(*price)],
        );
    }
    b.push(105.0, 2.0, vec![AttrValue::Cat(1), AttrValue::Num(0.0)]);
    b.push(106.0, 3.0, vec![AttrValue::Cat(2), AttrValue::Num(0.0)]);
    b.push(107.0, 4.0, vec![AttrValue::Cat(3), AttrValue::Num(0.0)]);
    // r_2 objects (region [200, 210) x [0, 10)): representation (2,0,2,0,2.9).
    b.push(201.0, 1.0, vec![AttrValue::Cat(0), AttrValue::Num(2.8)]);
    b.push(202.0, 2.0, vec![AttrValue::Cat(0), AttrValue::Num(3.0)]);
    b.push(203.0, 3.0, vec![AttrValue::Cat(2), AttrValue::Num(0.0)]);
    b.push(204.0, 4.0, vec![AttrValue::Cat(2), AttrValue::Num(0.0)]);
    let ds = b.build().unwrap();

    let rq = Rect::new(0.0, 0.0, 10.0, 10.0);
    let r1 = Rect::new(100.0, 0.0, 110.0, 10.0);
    let r2 = Rect::new(200.0, 0.0, 210.0, 10.0);

    let frq = agg.aggregate_region(&ds, &rq);
    let fr1 = agg.aggregate_region(&ds, &r1);
    let fr2 = agg.aggregate_region(&ds, &r2);
    let assert_close = |got: &FeatureVector, expected: &[f64]| {
        for (g, e) in got.iter().zip(expected) {
            assert!((g - e).abs() < 1e-9, "{got} vs {expected:?}");
        }
    };
    assert_close(&frq, &[2.0, 1.0, 1.0, 1.0, 1.75]);
    assert_close(&fr1, &[3.0, 1.0, 1.0, 1.0, 1.6]);
    assert_close(&fr2, &[2.0, 0.0, 2.0, 0.0, 2.9]);

    let w = Weights::uniform(5);
    let d1 = weighted_distance(&frq, &fr1, &w, DistanceMetric::L1);
    let d2 = weighted_distance(&frq, &fr2, &w, DistanceMetric::L1);
    assert!((d1 - 1.15).abs() < 1e-9);
    assert!((d2 - 4.15).abs() < 1e-9);
    assert!(d1 < d2, "Example 4: r_1 is more similar to r_q than r_2");

    // DS-Search with r_q as the example must therefore prefer r_1's
    // neighbourhood over r_2's (distance at most d1).
    let query = AsrsQuery::from_example_region(&ds, &agg, &rq).unwrap();
    let result = DsSearch::new(&ds, &agg).search(&query).unwrap();
    assert!(result.distance <= d1 + 1e-9);
}

#[test]
fn f1_style_query_finds_a_weekend_heavy_region() {
    let ds = TweetGenerator::compact(10).generate(4000, 13);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .unwrap();
    let query = AsrsQuery::new(
        RegionSize::new(60.0, 60.0),
        FeatureVector::new(vec![0.0, 0.0, 0.0, 0.0, 0.0, 25.0, 25.0]),
        Weights::new(vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.5, 0.5]),
    );
    let result = DsSearch::new(&ds, &agg).search(&query).unwrap();
    let rep = agg.aggregate_region(&ds, &result.region);
    let weekday: f64 = rep.as_slice()[..5].iter().sum();
    let weekend: f64 = rep.as_slice()[5..].iter().sum();
    assert!(
        weekend > weekday,
        "the returned region must be weekend-dominated, got weekday {weekday} vs weekend {weekend}"
    );
}

#[test]
fn f2_style_query_finds_popular_highly_rated_regions() {
    let ds = PoiSynGenerator::compact(8).generate(3000, 29);
    let agg = CompositeAggregator::builder(ds.schema())
        .sum("visits", Selection::All)
        .average("rating", Selection::All)
        .build()
        .unwrap();
    let vmax = 60_000.0;
    let query = AsrsQuery::new(
        RegionSize::new(100.0, 100.0),
        FeatureVector::new(vec![vmax, 10.0]),
        Weights::new(vec![1.0 / vmax, 1.0 / 10.0]),
    );
    let result = DsSearch::new(&ds, &agg).search(&query).unwrap();
    let rep = agg.aggregate_region(&ds, &result.region);
    // The selected region must have an above-average rating and a
    // substantial number of visits.
    let global_avg_rating = agg.aggregate(ds.objects())[agg.feature_dim() - 1];
    assert!(
        rep[1] >= global_avg_rating,
        "region rating {} should be at least the global average {}",
        rep[1],
        global_avg_rating
    );
    assert!(rep[0] > 0.0, "region must contain visits");
}

#[test]
fn dataset_io_roundtrip_preserves_search_results() {
    let ds = UniformGenerator::default().generate(200, 37);
    let text = asrs_data::io::to_string(&ds);
    let reloaded = asrs_data::io::from_str(&text).unwrap();
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    let query = AsrsQuery::new(
        RegionSize::new(10.0, 10.0),
        FeatureVector::new(vec![2.0, 2.0, 2.0, 2.0]),
        Weights::uniform(4),
    );
    let original = DsSearch::new(&ds, &agg).search(&query).unwrap();
    let roundtrip = DsSearch::new(&reloaded, &agg).search(&query).unwrap();
    assert_eq!(original.distance, roundtrip.distance);
}
