//! Serving end-to-end through the suite prelude: the HTTP layer and the
//! engine handle must answer identically, the query-result cache must be
//! observable through both, and batches must honour the per-query result
//! contract a server depends on.

use asrs_suite::prelude::*;

fn workload(n: usize, seed: u64) -> (Dataset, CompositeAggregator) {
    let ds = UniformGenerator::default().generate(n, seed);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    (ds, agg)
}

fn sample_query(i: u32) -> AsrsQuery {
    AsrsQuery::new(
        RegionSize::new(7.0 + i as f64, 9.0),
        FeatureVector::new(vec![i as f64, 2.0, 1.0, 0.0]),
        Weights::uniform(4),
    )
}

/// One engine, two surfaces: responses over the wire must be byte-identical
/// to handle submissions, and the cache must make repeats cheap and
/// observable through `/metrics` and `EngineHandle::cache_stats` alike.
#[test]
fn http_and_handle_surfaces_answer_identically() {
    let (ds, agg) = workload(350, 61);
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(20, 20)
        .cache_capacity(64)
        .build()
        .unwrap();
    let server = AsrsServer::bind(engine.handle(), "127.0.0.1:0", ServerConfig::default())
        .and_then(AsrsServer::start)
        .unwrap();

    let requests = vec![
        QueryRequest::similar(sample_query(1)),
        QueryRequest::top_k(sample_query(2), 3),
        QueryRequest::batch(vec![sample_query(1), sample_query(3)]),
        QueryRequest::max_rs(RegionSize::new(14.0, 14.0)),
    ];
    let mut client = HttpClient::connect(server.addr()).unwrap();
    for request in &requests {
        let (status, over_wire) = client
            .request("POST", "/query", &serde::json::to_string(request))
            .unwrap();
        assert_eq!(status, 200, "{over_wire}");
        // The wire answer populated the cache; the handle must replay the
        // exact same bytes.
        let direct = serde::json::to_string(&engine.handle().submit(request).unwrap());
        assert_eq!(over_wire, direct);
    }

    let cache = engine.handle().cache_stats().expect("cache attached");
    assert_eq!(cache.hits, requests.len() as u64);
    assert!(cache.hit_rate() > 0.0);
    let (status, metrics) = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains(&format!("\"hits\":{}", cache.hits)),
        "{metrics}"
    );

    drop(client);
    server.shutdown();
}

/// The per-query batch contract: `search_batch_results` returns one
/// `Result` per query, in input order, agreeing with the strict batch API
/// and with sequential searches — on the engine and on cloned handles.
#[test]
fn batch_results_expose_per_query_outcomes() {
    let (ds, agg) = workload(300, 11);
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(24, 24)
        .build()
        .unwrap();
    let queries: Vec<AsrsQuery> = (1..=6).map(sample_query).collect();

    let per_query = engine.search_batch_results(&queries).unwrap();
    let strict = engine.search_batch(&queries).unwrap();
    assert_eq!(per_query.len(), queries.len());
    for ((result, strict), query) in per_query.iter().zip(&strict).zip(&queries) {
        let result = result.as_ref().expect("all queries are valid");
        assert_eq!(result.anchor, strict.anchor);
        assert_eq!(result.distance, strict.distance);
        let single = engine.search(query).unwrap();
        assert_eq!(result.anchor, single.anchor);
        assert_eq!(result.distance, single.distance);
    }

    // Same contract through a handle, from another thread.
    let handle = engine.handle();
    let from_thread = std::thread::spawn(move || handle.search_batch_results(&queries).unwrap())
        .join()
        .unwrap();
    for (a, b) in from_thread.iter().zip(&per_query) {
        assert_eq!(a.as_ref().unwrap().distance, b.as_ref().unwrap().distance);
    }

    // A batch containing an invalid query still fails as a whole, before
    // any search runs (validation is all-or-nothing).
    let bad = AsrsQuery::new(
        RegionSize::new(-1.0, 1.0),
        FeatureVector::new(vec![1.0, 1.0, 1.0, 1.0]),
        Weights::uniform(4),
    );
    assert!(engine
        .search_batch_results(&[sample_query(1), bad])
        .is_err());
}

/// Deadlines behave identically over the wire and in process: a spent
/// budget is 408 on HTTP and `DeadlineExceeded` on the handle, and a
/// generous budget succeeds on both.
#[test]
fn deadlines_are_consistent_across_surfaces() {
    let (ds, agg) = workload(600, 17);
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(16, 16)
        .build()
        .unwrap();
    let server = AsrsServer::bind(engine.handle(), "127.0.0.1:0", ServerConfig::default())
        .and_then(AsrsServer::start)
        .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let expired = QueryRequest::similar(sample_query(1)).with_budget_ms(0);
    let (status, body) = client
        .request("POST", "/query", &serde::json::to_string(&expired))
        .unwrap();
    assert_eq!(status, 408, "{body}");
    assert!(matches!(
        engine.handle().submit(&expired),
        Err(AsrsError::DeadlineExceeded { .. })
    ));

    let generous = QueryRequest::similar(sample_query(1)).with_budget_ms(60_000);
    let (status, _) = client
        .request("POST", "/query", &serde::json::to_string(&generous))
        .unwrap();
    assert_eq!(status, 200);
    assert!(engine.handle().submit(&generous).is_ok());

    drop(client);
    server.shutdown();
}
