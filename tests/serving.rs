//! Serving end-to-end through the suite prelude: the HTTP layer and the
//! engine handle must answer identically, the query-result cache must be
//! observable through both, and batches must honour the per-query result
//! contract a server depends on.

use asrs_suite::prelude::*;

fn workload(n: usize, seed: u64) -> (Dataset, CompositeAggregator) {
    let ds = UniformGenerator::default().generate(n, seed);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    (ds, agg)
}

fn sample_query(i: u32) -> AsrsQuery {
    AsrsQuery::new(
        RegionSize::new(7.0 + i as f64, 9.0),
        FeatureVector::new(vec![i as f64, 2.0, 1.0, 0.0]),
        Weights::uniform(4),
    )
}

/// One engine, two surfaces: responses over the wire must be byte-identical
/// to handle submissions, and the cache must make repeats cheap and
/// observable through `/metrics` and `EngineHandle::cache_stats` alike.
#[test]
fn http_and_handle_surfaces_answer_identically() {
    let (ds, agg) = workload(350, 61);
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(20, 20)
        .cache_capacity(64)
        .build()
        .unwrap();
    let server = AsrsServer::bind(engine.handle(), "127.0.0.1:0", ServerConfig::default())
        .and_then(AsrsServer::start)
        .unwrap();

    let requests = vec![
        QueryRequest::similar(sample_query(1)),
        QueryRequest::top_k(sample_query(2), 3),
        QueryRequest::batch(vec![sample_query(1), sample_query(3)]),
        QueryRequest::max_rs(RegionSize::new(14.0, 14.0)),
    ];
    let mut client = HttpClient::connect(server.addr()).unwrap();
    for request in &requests {
        let (status, over_wire) = client
            .request("POST", "/query", &serde::json::to_string(request))
            .unwrap();
        assert_eq!(status, 200, "{over_wire}");
        // The wire answer populated the cache; the handle must replay the
        // exact same bytes.
        let direct = serde::json::to_string(&engine.handle().submit(request).unwrap());
        assert_eq!(over_wire, direct);
    }

    let cache = engine.handle().cache_stats().expect("cache attached");
    assert_eq!(cache.hits, requests.len() as u64);
    assert!(cache.hit_rate() > 0.0);
    let (status, metrics) = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains(&format!("\"hits\":{}", cache.hits)),
        "{metrics}"
    );

    drop(client);
    server.shutdown();
}

/// The per-query batch contract: `search_batch_results` returns one
/// `Result` per query, in input order, agreeing with the strict batch API
/// and with sequential searches — on the engine and on cloned handles.
#[test]
fn batch_results_expose_per_query_outcomes() {
    let (ds, agg) = workload(300, 11);
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(24, 24)
        .build()
        .unwrap();
    let queries: Vec<AsrsQuery> = (1..=6).map(sample_query).collect();

    let per_query = engine.search_batch_results(&queries).unwrap();
    let strict = engine.search_batch(&queries).unwrap();
    assert_eq!(per_query.len(), queries.len());
    for ((result, strict), query) in per_query.iter().zip(&strict).zip(&queries) {
        let result = result.as_ref().expect("all queries are valid");
        assert_eq!(result.anchor, strict.anchor);
        assert_eq!(result.distance, strict.distance);
        let single = engine.search(query).unwrap();
        assert_eq!(result.anchor, single.anchor);
        assert_eq!(result.distance, single.distance);
    }

    // Same contract through a handle, from another thread.
    let handle = engine.handle();
    let from_thread = std::thread::spawn(move || handle.search_batch_results(&queries).unwrap())
        .join()
        .unwrap();
    for (a, b) in from_thread.iter().zip(&per_query) {
        assert_eq!(a.as_ref().unwrap().distance, b.as_ref().unwrap().distance);
    }

    // A batch containing an invalid query still fails as a whole, before
    // any search runs (validation is all-or-nothing).
    let bad = AsrsQuery::new(
        RegionSize::new(-1.0, 1.0),
        FeatureVector::new(vec![1.0, 1.0, 1.0, 1.0]),
        Weights::uniform(4),
    );
    assert!(engine
        .search_batch_results(&[sample_query(1), bad])
        .is_err());
}

/// Hammer a *sharded* engine handle from eight threads with a mixed
/// workload: every response must be deterministic across threads and
/// repetitions, and — because the cache was warmed first — must replay the
/// warm bytes exactly (statistics included).  This is the serving-side
/// guarantee of the scatter-gather executor: concurrency and shard count
/// are invisible to clients.
#[test]
fn sharded_handles_are_deterministic_under_concurrency() {
    let (ds, agg) = workload(320, 23);
    let engine = AsrsEngine::builder(ds, agg)
        .shards(3)
        .build_index(16, 16)
        .cache_capacity(64)
        .build()
        .unwrap();
    assert_eq!(engine.shard_count(), 3);
    let handle = engine.handle();

    let requests: Vec<QueryRequest> = vec![
        QueryRequest::similar(sample_query(1)),
        QueryRequest::top_k(sample_query(2), 3),
        QueryRequest::batch(vec![sample_query(1), sample_query(4)]),
        QueryRequest::approximate(sample_query(3), 0.2),
        QueryRequest::max_rs(RegionSize::new(12.0, 12.0)),
        QueryRequest::similar(sample_query(5)).with_budget_ms(120_000),
    ];
    // Warm the cache serially so every concurrent submission below is a
    // replay (two simultaneous cold misses would both compute, and wall
    // clocks differ between computations).
    let warm: Vec<String> = requests
        .iter()
        .map(|r| serde::json::to_string(&handle.submit(r).unwrap()))
        .collect();

    let handle_ref = &handle;
    let outcomes: Vec<Vec<String>> = std::thread::scope(|scope| {
        (0..8)
            .map(|t| {
                let handle = handle_ref.clone();
                let requests = &requests;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for round in 0..4 {
                        for slot in 0..requests.len() {
                            // Interleave differently per thread/round.
                            let i = (slot + t + round) % requests.len();
                            let response = handle.submit(&requests[i]).unwrap();
                            out.push(format!("{i}:{}", serde::json::to_string(&response)));
                        }
                    }
                    out
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    for per_thread in &outcomes {
        for line in per_thread {
            let (i, body) = line.split_once(':').unwrap();
            let i: usize = i.parse().unwrap();
            assert_eq!(
                body, warm[i],
                "a concurrent replay must be byte-identical to the warm response"
            );
        }
    }
    // Every populated shard served scattered executions.
    let counts = handle.shard_request_counts().unwrap();
    assert_eq!(counts.len(), 3);
    assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
}

/// The HTTP surface serves a sharded engine transparently and exposes the
/// per-shard request counters through `/metrics`.
#[test]
fn http_serves_sharded_engines_with_shard_metrics() {
    let (ds, agg) = workload(280, 31);
    let engine = AsrsEngine::builder(ds, agg)
        .shards(4)
        .build_index(16, 16)
        .cache_capacity(32)
        .build()
        .unwrap();
    let server = AsrsServer::bind(engine.handle(), "127.0.0.1:0", ServerConfig::default())
        .and_then(AsrsServer::start)
        .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let request = QueryRequest::similar(sample_query(2));
    let (status, over_wire) = client
        .request("POST", "/query", &serde::json::to_string(&request))
        .unwrap();
    assert_eq!(status, 200, "{over_wire}");
    let direct = serde::json::to_string(&engine.handle().submit(&request).unwrap());
    assert_eq!(over_wire, direct, "wire and handle answers agree");

    let metrics = server.metrics();
    let shards = metrics
        .shards
        .expect("sharded engine exposes shard metrics");
    assert_eq!(shards.shard_count, 4);
    assert_eq!(shards.requests.len(), 4);
    assert!(shards.requests.iter().sum::<u64>() > 0);
    let (status, body) = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"shard_count\":4"), "{body}");

    // /explain names the scatter fan-out.
    let (status, body) = client
        .request("GET", "/explain", &serde::json::to_string(&request))
        .unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("shard_fan_out"), "{body}");

    drop(client);
    server.shutdown();
}

/// Deadlines behave identically over the wire and in process: a spent
/// budget is 408 on HTTP and `DeadlineExceeded` on the handle, and a
/// generous budget succeeds on both.
#[test]
fn deadlines_are_consistent_across_surfaces() {
    let (ds, agg) = workload(600, 17);
    let engine = AsrsEngine::builder(ds, agg)
        .build_index(16, 16)
        .build()
        .unwrap();
    let server = AsrsServer::bind(engine.handle(), "127.0.0.1:0", ServerConfig::default())
        .and_then(AsrsServer::start)
        .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let expired = QueryRequest::similar(sample_query(1)).with_budget_ms(0);
    let (status, body) = client
        .request("POST", "/query", &serde::json::to_string(&expired))
        .unwrap();
    assert_eq!(status, 408, "{body}");
    assert!(matches!(
        engine.handle().submit(&expired),
        Err(AsrsError::DeadlineExceeded { .. })
    ));

    let generous = QueryRequest::similar(sample_query(1)).with_budget_ms(60_000);
    let (status, _) = client
        .request("POST", "/query", &serde::json::to_string(&generous))
        .unwrap();
    assert_eq!(status, 200);
    assert!(engine.handle().submit(&generous).is_ok());

    drop(client);
    server.shutdown();
}
