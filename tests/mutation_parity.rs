//! Differential parity harness for the generational mutable engine.
//!
//! The mutation machinery promises *rebuild equivalence*: after any
//! interleaving of appends, removals, TTL expiries and queries, the
//! engine's responses are **byte-identical** to those of a fresh engine
//! built from the equivalent final dataset — for the unsharded engine and
//! for shard counts {1, 2, 4}, with the query-result cache enabled on the
//! mutated engine (generation-stamped keys make stale hits structurally
//! impossible, so warm submissions must replay the *current* generation's
//! answer, never a superseded one).
//!
//! The comparison form is the same one `tests/shard_parity.rs`
//! established for space: [`QueryResponse::stats_stripped`] serialized to
//! JSON and compared as raw bytes.  Statistics are exempt (they describe
//! the execution that ran: a mutated engine's shard layout legitimately
//! differs from a re-partitioned rebuild's, and shard layout never affects
//! answers).

use asrs_suite::prelude::*;

/// Shard configurations under test: the classic single engine plus the
/// scatter-gather engine at 1, 2 and 4 shards.
const SHARD_CONFIGS: [usize; 4] = [0, 1, 2, 4];

/// A tiny seeded LCG so the interleavings sweep deterministically without
/// depending on the vendored rand API.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// A categorical workload (count-vector statistics — the paper's primary
/// aggregator family).
fn categorical_workload(n: usize, seed: u64) -> (Dataset, CompositeAggregator) {
    let ds = UniformGenerator::default().generate(n, seed);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    (ds, agg)
}

/// A float-sum workload: sum and average aggregators over a numeric
/// attribute whose values are dyadic rationals (multiples of 0.25), so
/// statistics sums are exact in any accumulation order and byte parity is
/// meaningful for the float-sum pipeline too (the Kahan-compensated
/// accumulation keeps ill-conditioned sums order-independent as well, but
/// a parity *test* should not gamble on conditioning).
fn float_sum_workload(n: usize, seed: u64) -> (Dataset, CompositeAggregator) {
    let schema = Schema::new(vec![
        AttributeDef::new("category", AttributeKind::categorical(3)),
        AttributeDef::new("weight", AttributeKind::numeric(-64.0, 64.0)),
    ]);
    let mut lcg = Lcg::new(seed);
    let mut b = DatasetBuilder::new(schema);
    for _ in 0..n {
        let x = lcg.in_range(0.0, 100.0);
        let y = lcg.in_range(0.0, 100.0);
        let weight = (lcg.in_range(-64.0, 64.0) * 4.0).round() / 4.0;
        let cat = lcg.pick(3) as u32;
        b.push(x, y, vec![AttrValue::Cat(cat), AttrValue::Num(weight)]);
    }
    let ds = b.build().unwrap();
    let agg = CompositeAggregator::builder(ds.schema())
        .sum("weight", Selection::All)
        .average("weight", Selection::cat_equals(0, 1))
        .build()
        .unwrap();
    (ds, agg)
}

/// A pool of requests spanning the operation surface, seeded.
fn request_pool(ds: &Dataset, agg: &CompositeAggregator, seed: u64) -> Vec<QueryRequest> {
    let dim = agg.feature_dim();
    let bbox = ds.bounding_box().expect("non-empty dataset");
    let mut lcg = Lcg::new(seed);
    let mut query = |frac: f64| -> AsrsQuery {
        let size = RegionSize::new(
            (bbox.width() * frac).max(1e-3),
            (bbox.height() * frac * lcg.in_range(0.6, 1.4)).max(1e-3),
        );
        let target: Vec<f64> = (0..dim).map(|_| lcg.in_range(-2.0, 6.0)).collect();
        AsrsQuery::new(size, FeatureVector::new(target), Weights::uniform(dim))
    };
    let small = query(0.08);
    let medium = query(0.22);
    let straddling = query(0.5);
    vec![
        QueryRequest::similar(small.clone()),
        QueryRequest::similar(straddling.clone()),
        QueryRequest::top_k(medium.clone(), 3),
        QueryRequest::batch(vec![small, medium.clone()]),
        QueryRequest::approximate(medium, 0.25),
        QueryRequest::max_rs(RegionSize::new(
            (bbox.width() / 9.0).max(0.5),
            (bbox.height() / 11.0).max(0.5),
        )),
    ]
}

fn canonical_bytes(response: &QueryResponse) -> String {
    serde::json::to_string(&response.stats_stripped())
}

fn build_engine(ds: Dataset, agg: CompositeAggregator, shards: usize, cache: usize) -> AsrsEngine {
    let mut builder = AsrsEngine::builder(ds, agg)
        .build_index(12, 12)
        .cache_capacity(cache);
    if shards > 0 {
        builder = builder.shards(shards);
    }
    builder.build().unwrap()
}

/// One mutation drawn from the seeded stream.  Appends stay inside the
/// original extent most of the time (incremental index maintenance), leave
/// it occasionally (geometry rebuild / shard re-partition), and sometimes
/// carry a zero TTL followed by a sweep (expiry path).
fn apply_random_mutation(
    engine: &AsrsEngine,
    lcg: &mut Lcg,
    bbox: &Rect,
    live_ids: &mut Vec<u64>,
    next_id: &mut u64,
    template: &SpatialObject,
) {
    match lcg.pick(10) {
        // Removal (when anything is removable).
        0 | 1 if !live_ids.is_empty() => {
            let idx = lcg.pick(live_ids.len());
            let id = live_ids.swap_remove(idx);
            engine.remove(id).unwrap();
        }
        // TTL'd append + immediate sweep: exercises the expiry path.
        2 => {
            let id = *next_id;
            *next_id += 1;
            let object = SpatialObject::new(
                id,
                Point::new(
                    bbox.min_x + bbox.width() * lcg.next_f64(),
                    bbox.min_y + bbox.height() * lcg.next_f64(),
                ),
                template.values.clone(),
            );
            engine
                .append_with_ttl(object, std::time::Duration::ZERO)
                .unwrap();
            let receipts = engine.sweep_expired().unwrap();
            assert_eq!(receipts.len(), 1, "the zero-TTL object expires at once");
            assert_eq!(receipts[0].kind, "expire");
        }
        // Rare exterior append: moves the bounding box, forcing the
        // geometry-rebuild (and, sharded, the re-partition) path.
        3 => {
            let id = *next_id;
            *next_id += 1;
            let object = SpatialObject::new(
                id,
                Point::new(bbox.max_x + 1.0 + lcg.next_f64() * 5.0, bbox.min_y - 1.0),
                template.values.clone(),
            );
            engine.append(object).unwrap();
            live_ids.push(id);
        }
        // Interior append: the common case, incremental maintenance.
        _ => {
            let id = *next_id;
            *next_id += 1;
            let object = SpatialObject::new(
                id,
                Point::new(
                    bbox.min_x + bbox.width() * lcg.next_f64(),
                    bbox.min_y + bbox.height() * lcg.next_f64(),
                ),
                template.values.clone(),
            );
            engine.append(object).unwrap();
            live_ids.push(id);
        }
    }
}

/// The tentpole assertion: after every checkpoint of a seeded
/// append/remove/expire interleaving, the mutated engine (cache enabled)
/// answers byte-identically to a fresh engine rebuilt from the equivalent
/// final dataset — for the unsharded engine and shard counts {1, 2, 4} —
/// and warm resubmissions replay the current generation, never a stale
/// one.
#[test]
fn mutated_engines_answer_like_fresh_rebuilds() {
    let workloads: [(&str, (Dataset, CompositeAggregator)); 2] = [
        ("categorical", categorical_workload(160, 11)),
        ("float-sum", float_sum_workload(140, 23)),
    ];
    for (name, (ds, agg)) in workloads {
        let bbox = ds.bounding_box().unwrap();
        let template = ds.object(0).clone();
        for shards in SHARD_CONFIGS {
            let engine = build_engine(ds.clone(), agg.clone(), shards, 64);
            let mut lcg = Lcg::new(1000 + shards as u64);
            let mut live_ids: Vec<u64> = Vec::new();
            let mut next_id = 1_000_000u64;
            let mut generation_floor = 0u64;
            for checkpoint in 0..3 {
                for _ in 0..8 {
                    apply_random_mutation(
                        &engine,
                        &mut lcg,
                        &bbox,
                        &mut live_ids,
                        &mut next_id,
                        &template,
                    );
                }
                assert!(
                    engine.generation() > generation_floor,
                    "every mutation bumps the generation"
                );
                generation_floor = engine.generation();

                // Fresh engine from the equivalent final dataset (same
                // builder settings, same shard count; no cache needed —
                // byte identity is on stripped responses).
                let rebuilt = build_engine((*engine.dataset()).clone(), agg.clone(), shards, 0);
                for request in request_pool(&engine.dataset(), &agg, 77 + checkpoint) {
                    let expected = canonical_bytes(&rebuilt.submit(&request).unwrap());
                    let cold = canonical_bytes(&engine.submit(&request).unwrap());
                    assert_eq!(
                        cold,
                        expected,
                        "{name}, shards {shards}, checkpoint {checkpoint}, \
                         {}: mutated engine diverged from rebuild",
                        request.operation_name()
                    );
                    // Warm resubmission: the cache may only replay the
                    // *current* generation's response.
                    let warm = canonical_bytes(&engine.submit(&request).unwrap());
                    assert_eq!(
                        warm,
                        expected,
                        "{name}, shards {shards}, checkpoint {checkpoint}, \
                         {}: warm submission replayed a stale generation",
                        request.operation_name()
                    );
                }
                // Unsharded engines must also agree on the planner inputs
                // (sharded layouts legitimately differ from a fresh
                // partition, but shard layout never affects answers).
                if shards == 0 {
                    assert_eq!(engine.statistics(), rebuilt.statistics(), "{name}");
                }
            }
            // The interleaving exercised the incremental path.
            let stats = engine.mutation_stats();
            assert!(
                stats.incremental_index_updates > 0,
                "{name}, shards {shards}: no incremental maintenance ran: {stats:?}"
            );
            assert_eq!(
                stats.generation,
                stats.appends + stats.removes + stats.expiries,
                "every applied mutation is one generation"
            );
        }
    }
}

/// Re-partition triggers: an append outside the partition extent and an
/// imbalance past the policy factor must both re-partition — and parity
/// with a rebuild must survive the re-partition.
#[test]
fn repartition_triggers_fire_and_keep_parity() {
    let (ds, agg) = categorical_workload(120, 31);
    let bbox = ds.bounding_box().unwrap();
    let template = ds.object(0).clone();

    // Exterior append re-partitions.
    let engine = build_engine(ds.clone(), agg.clone(), 3, 16);
    let receipt = engine
        .append(SpatialObject::new(
            900_000,
            Point::new(bbox.max_x + 30.0, bbox.max_y + 30.0),
            template.values.clone(),
        ))
        .unwrap();
    assert!(
        receipt.repartitioned,
        "an append outside the partition extent must re-partition"
    );

    // Imbalance re-partitions: a tight factor plus a stream of appends
    // into one corner.
    let tight = AsrsEngine::builder(ds.clone(), agg.clone())
        .build_index(12, 12)
        .shards(4)
        .mutation_policy(MutationPolicy {
            shard_imbalance_factor: 1.2,
            ..Default::default()
        })
        .build()
        .unwrap();
    let mut repartitioned = false;
    for i in 0..40 {
        let receipt = tight
            .append(SpatialObject::new(
                910_000 + i,
                Point::new(
                    bbox.min_x + bbox.width() * 0.05,
                    bbox.min_y + bbox.height() * 0.05,
                ),
                template.values.clone(),
            ))
            .unwrap();
        repartitioned |= receipt.repartitioned;
    }
    assert!(
        repartitioned,
        "40 corner appends at factor 1.2 must unbalance some shard"
    );
    assert!(tight.mutation_stats().repartitions >= 1);

    // Parity survives both re-partitions.
    for (engine, label) in [(&engine, "exterior"), (&tight, "imbalance")] {
        let rebuilt = build_engine(
            (*engine.dataset()).clone(),
            agg.clone(),
            engine.shard_count(),
            0,
        );
        for request in request_pool(&engine.dataset(), &agg, 5) {
            assert_eq!(
                canonical_bytes(&engine.submit(&request).unwrap()),
                canonical_bytes(&rebuilt.submit(&request).unwrap()),
                "{label}: {}",
                request.operation_name()
            );
        }
    }
}

/// A whole `append_batch` payload commits as **one** generation: every
/// receipt shares the generation and reports the folded-batch size, the
/// generation counter moves by exactly one, and the batched engine answers
/// byte-identically to both a rebuild and an engine that applied the same
/// appends one by one.
#[test]
fn append_batch_is_one_generation_and_matches_sequential_application() {
    let (ds, agg) = categorical_workload(120, 47);
    let bbox = ds.bounding_box().unwrap();
    let template = ds.object(0).clone();
    for shards in SHARD_CONFIGS {
        let batched = build_engine(ds.clone(), agg.clone(), shards, 32);
        let sequential = build_engine(ds.clone(), agg.clone(), shards, 0);
        let mut lcg = Lcg::new(4000 + shards as u64);
        let objects: Vec<SpatialObject> = (0..17u64)
            .map(|i| {
                SpatialObject::new(
                    700_000 + i,
                    Point::new(
                        bbox.min_x + bbox.width() * lcg.next_f64(),
                        bbox.min_y + bbox.height() * lcg.next_f64(),
                    ),
                    template.values.clone(),
                )
            })
            .collect();

        let before = batched.generation();
        let receipts = batched
            .append_batch(objects.iter().map(|o| (o.clone(), None)).collect())
            .unwrap();
        assert_eq!(receipts.len(), objects.len());
        assert_eq!(
            batched.generation(),
            before + 1,
            "shards {shards}: one payload, one published generation"
        );
        for (i, receipt) in receipts.iter().enumerate() {
            assert_eq!(receipt.generation, before + 1);
            assert_eq!(receipt.batch, objects.len());
            assert_eq!(receipt.kind, "append");
            assert_eq!(receipt.object_count, ds.len() + i + 1);
        }

        for object in &objects {
            sequential.append(object.clone()).unwrap();
        }
        assert_eq!(
            sequential.generation(),
            before + objects.len() as u64,
            "the solo path still publishes one generation per mutation"
        );

        let rebuilt = build_engine((*batched.dataset()).clone(), agg.clone(), shards, 0);
        for request in request_pool(&batched.dataset(), &agg, 9) {
            let expected = canonical_bytes(&rebuilt.submit(&request).unwrap());
            assert_eq!(
                canonical_bytes(&batched.submit(&request).unwrap()),
                expected,
                "shards {shards}, {}: batched engine diverged from rebuild",
                request.operation_name()
            );
            assert_eq!(
                canonical_bytes(&sequential.submit(&request).unwrap()),
                expected,
                "shards {shards}, {}: sequential engine diverged from batched",
                request.operation_name()
            );
        }
        if shards == 0 {
            assert_eq!(batched.statistics(), rebuilt.statistics());
        }
    }
}

/// Batch validation is all-or-nothing: a duplicate or schema-breaking
/// object anywhere in an `append_batch` payload rejects the entire payload
/// without publishing a generation or touching the dataset.
#[test]
fn append_batch_validation_is_atomic() {
    let (ds, agg) = categorical_workload(60, 51);
    let bbox = ds.bounding_box().unwrap();
    let template = ds.object(0).clone();
    let existing_id = ds.object(0).id;
    let engine = build_engine(ds.clone(), agg, 0, 0);
    let fresh = |id: u64| {
        SpatialObject::new(
            id,
            Point::new(bbox.min_x + 1.0, bbox.min_y + 1.0),
            template.values.clone(),
        )
    };

    // A collision with a live object rejects the payload.
    let err = engine
        .append_batch(vec![
            (fresh(800_000), None),
            (fresh(existing_id), None),
            (fresh(800_001), None),
        ])
        .unwrap_err();
    assert!(matches!(err, AsrsError::DuplicateObjectId { id } if id == existing_id));

    // So does a collision *within* the payload.
    let err = engine
        .append_batch(vec![(fresh(800_002), None), (fresh(800_002), None)])
        .unwrap_err();
    assert!(matches!(err, AsrsError::DuplicateObjectId { id } if id == 800_002));

    assert_eq!(engine.generation(), 0, "no generation published");
    assert_eq!(engine.dataset().len(), ds.len(), "no object landed");

    // The same ids are free for a clean retry.
    let receipts = engine
        .append_batch(vec![(fresh(800_000), None), (fresh(800_002), None)])
        .unwrap();
    assert_eq!(receipts.len(), 2);
    assert_eq!(engine.generation(), 1);
}

/// A sweep with several due TTLs publishes **one** generation for the
/// whole sweep (the old path published one per expired object), and
/// parity with a rebuild survives it.
#[test]
fn a_sweep_expires_everything_in_one_generation() {
    let (ds, agg) = categorical_workload(80, 53);
    let bbox = ds.bounding_box().unwrap();
    let template = ds.object(0).clone();
    for shards in SHARD_CONFIGS {
        let engine = build_engine(ds.clone(), agg.clone(), shards, 16);
        // Arm all five in one batch: armed sequentially, each later commit
        // would piggyback the earlier (already-due) expiries and leave
        // nothing for the sweep under test.
        engine
            .append_batch(
                (0..5u64)
                    .map(|i| {
                        (
                            SpatialObject::new(
                                850_000 + i,
                                Point::new(
                                    bbox.min_x + bbox.width() * 0.2 * (i as f64 + 0.5),
                                    bbox.min_y + bbox.height() * 0.5,
                                ),
                                template.values.clone(),
                            ),
                            Some(std::time::Duration::ZERO),
                        )
                    })
                    .collect(),
            )
            .unwrap();
        let before = engine.generation();
        let receipts = engine.sweep_expired().unwrap();
        assert_eq!(receipts.len(), 5, "shards {shards}: all five TTLs expire");
        assert_eq!(
            engine.generation(),
            before + 1,
            "shards {shards}: one sweep, one generation"
        );
        for receipt in &receipts {
            assert_eq!(receipt.kind, "expire");
            assert_eq!(receipt.generation, before + 1);
            assert_eq!(receipt.batch, 5);
        }
        assert_eq!(engine.mutation_stats().expiries, 5);

        let rebuilt = build_engine((*engine.dataset()).clone(), agg.clone(), shards, 0);
        for request in request_pool(&engine.dataset(), &agg, 13) {
            assert_eq!(
                canonical_bytes(&engine.submit(&request).unwrap()),
                canonical_bytes(&rebuilt.submit(&request).unwrap()),
                "shards {shards}, {}: post-sweep divergence",
                request.operation_name()
            );
        }
    }
}

/// While write traffic flows, due TTL expiries ride application commit
/// batches: an append issued after a zero-TTL deadline has passed folds
/// the expiry into its own generation — no explicit sweep — and parity
/// with a rebuild survives.  The expiry serializes before the append, so
/// the caller's receipt reports the combined batch.
#[test]
fn an_application_commit_piggybacks_due_expiries() {
    let (ds, agg) = categorical_workload(80, 57);
    let bbox = ds.bounding_box().unwrap();
    let template = ds.object(0).clone();
    for shards in SHARD_CONFIGS {
        let engine = build_engine(ds.clone(), agg.clone(), shards, 16);
        engine
            .append_with_ttl(
                SpatialObject::new(
                    860_000,
                    Point::new(
                        bbox.min_x + bbox.width() * 0.3,
                        bbox.min_y + bbox.height() * 0.4,
                    ),
                    template.values.clone(),
                ),
                std::time::Duration::ZERO,
            )
            .unwrap();
        assert_eq!(
            engine.mutation_stats().expiries,
            0,
            "shards {shards}: arming a TTL survives its own commit"
        );
        let before = engine.generation();
        let receipt = engine
            .append(SpatialObject::new(
                860_001,
                Point::new(
                    bbox.min_x + bbox.width() * 0.6,
                    bbox.min_y + bbox.height() * 0.6,
                ),
                template.values.clone(),
            ))
            .unwrap();
        assert_eq!(
            engine.generation(),
            before + 1,
            "shards {shards}: expiry + append publish one generation"
        );
        assert_eq!(
            receipt.batch, 2,
            "shards {shards}: the due expiry rode the append's batch"
        );
        assert_eq!(
            engine.mutation_stats().expiries,
            1,
            "shards {shards}: the append's commit expired the due object"
        );
        assert!(
            !engine.dataset().iter().any(|(_, o)| o.id == 860_000),
            "shards {shards}: the expired object left the dataset"
        );

        let rebuilt = build_engine((*engine.dataset()).clone(), agg.clone(), shards, 0);
        for request in request_pool(&engine.dataset(), &agg, 17) {
            assert_eq!(
                canonical_bytes(&engine.submit(&request).unwrap()),
                canonical_bytes(&rebuilt.submit(&request).unwrap()),
                "shards {shards}, {}: post-piggyback divergence",
                request.operation_name()
            );
        }
    }
}

/// Concurrent mutators coalesce: handles hammering appends and removals
/// from several threads produce receipts whose generations can fold many
/// mutations into one batch, every caller still gets its own receipt, and
/// the final engine answers byte-identically to a rebuild of its final
/// dataset.  Coalescing is scheduling-dependent, so the test retries a few
/// seeded rounds until it observes a folded batch (in practice the first
/// round has them).
#[test]
fn concurrent_mutations_coalesce_and_keep_parity() {
    let (ds, agg) = categorical_workload(100, 61);
    let bbox = ds.bounding_box().unwrap();
    let template = ds.object(0).clone();
    let engine = build_engine(ds.clone(), agg.clone(), 2, 32);
    let mut saw_folded_batch = false;

    for round in 0..50u64 {
        let threads = 4;
        let per_thread = 24;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads));
        let before = engine.generation();
        let mut joins = Vec::new();
        for t in 0..threads as u64 {
            let handle = engine.handle();
            let barrier = std::sync::Arc::clone(&barrier);
            let template = template.clone();
            let bbox = bbox;
            joins.push(std::thread::spawn(move || {
                let mut lcg = Lcg::new(9000 + round * 31 + t);
                let mut mine: Vec<u64> = Vec::new();
                let mut max_batch = 1usize;
                barrier.wait();
                for i in 0..per_thread {
                    let receipt = if !mine.is_empty() && lcg.pick(4) == 0 {
                        let id = mine.swap_remove(lcg.pick(mine.len()));
                        handle.remove(id).unwrap()
                    } else {
                        let id = 1_000_000 + round * 10_000 + t * 1_000 + i;
                        let object = SpatialObject::new(
                            id,
                            Point::new(
                                bbox.min_x + bbox.width() * lcg.next_f64(),
                                bbox.min_y + bbox.height() * lcg.next_f64(),
                            ),
                            template.values.clone(),
                        );
                        let receipt = handle.append(object).unwrap();
                        mine.push(id);
                        receipt
                    };
                    assert!(receipt.generation > before);
                    assert!(receipt.batch >= 1);
                    max_batch = max_batch.max(receipt.batch);
                }
                // Leave this thread's survivors in place for the parity
                // check; report the largest fold observed.
                max_batch
            }));
        }
        let mut mutations_applied = 0u64;
        for join in joins {
            let max_batch = join.join().unwrap();
            saw_folded_batch |= max_batch > 1;
            mutations_applied += per_thread;
        }
        let published = engine.generation() - before;
        assert!(
            published >= 1 && published <= mutations_applied,
            "round {round}: {published} generations for {mutations_applied} mutations"
        );
        if saw_folded_batch {
            break;
        }
    }
    assert!(
        saw_folded_batch,
        "50 rounds of 4-thread contention never coalesced a batch"
    );

    let stats = engine.mutation_stats();
    assert!(
        stats.generation <= stats.appends + stats.removes + stats.expiries,
        "coalescing can only fold generations, never mint extras: {stats:?}"
    );

    let rebuilt = build_engine((*engine.dataset()).clone(), agg.clone(), 2, 0);
    for request in request_pool(&engine.dataset(), &agg, 21) {
        assert_eq!(
            canonical_bytes(&engine.submit(&request).unwrap()),
            canonical_bytes(&rebuilt.submit(&request).unwrap()),
            "{}: concurrent-mutation engine diverged from rebuild",
            request.operation_name()
        );
    }
}

/// Mutating down to (and back up from) the empty dataset must not wedge
/// the engine: the index is dropped when the last object leaves and
/// rebuilt when the first one returns, and parity holds throughout.
#[test]
fn draining_and_refilling_the_dataset_keeps_parity() {
    let schema = Schema::new(vec![AttributeDef::new(
        "category",
        AttributeKind::categorical(2),
    )]);
    let mut b = DatasetBuilder::new(schema);
    for i in 0..6 {
        b.push(
            i as f64 * 7.0,
            (i % 3) as f64 * 5.0,
            vec![AttrValue::Cat(i % 2)],
        );
    }
    let ds = b.build().unwrap();
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    let engine = build_engine(ds.clone(), agg.clone(), 0, 8);

    // Drain everything.
    for id in 0..6 {
        engine.remove(id).unwrap();
    }
    assert_eq!(engine.dataset().len(), 0);
    assert!(engine.index().is_none(), "the index is dropped when empty");
    let query = AsrsQuery::new(
        RegionSize::new(2.0, 2.0),
        FeatureVector::new(vec![1.0, 1.0]),
        Weights::uniform(2),
    );
    // The empty engine still answers (the empty-region candidate).
    let response = engine
        .submit(&QueryRequest::similar(query.clone()))
        .unwrap();
    assert_eq!(response.best().unwrap().distance, 2.0);

    // Refill: the index comes back and parity holds.
    for i in 0..5u64 {
        engine
            .append(SpatialObject::new(
                100 + i,
                Point::new(3.0 + i as f64 * 4.0, 2.0 + i as f64),
                vec![AttrValue::Cat((i % 2) as u32)],
            ))
            .unwrap();
    }
    assert!(engine.index().is_some(), "the index returns with the data");
    let rebuilt = build_engine((*engine.dataset()).clone(), agg, 0, 0);
    assert_eq!(
        canonical_bytes(
            &engine
                .submit(&QueryRequest::similar(query.clone()))
                .unwrap()
        ),
        canonical_bytes(&rebuilt.submit(&QueryRequest::similar(query)).unwrap()),
    );
    assert_eq!(engine.statistics(), rebuilt.statistics());
}

/// The churn half of the parity promise: under a mixed read/append
/// interleaving the cache *carries* provably unaffected entries across
/// generations (see `asrs-core`'s `carry` module), and every carried hit
/// must still be byte-identical to a cold recomputation against a fresh
/// rebuild.  Debug builds additionally prove every individual carry by
/// recomputation before it becomes servable; this test is the release-mode
/// enforcement of the same obligation — `cargo test --release` runs the
/// exact comparison the debug proof path performs.
#[test]
fn churn_carried_hits_are_byte_identical_to_cold_recompute() {
    let mut total_carried = 0u64;
    for (name, (ds, agg)) in [
        ("categorical", categorical_workload(400, 71)),
        ("float-sum", float_sum_workload(260, 72)),
    ] {
        for shards in SHARD_CONFIGS {
            let engine = build_engine(ds.clone(), agg.clone(), shards, 64);
            let bbox = ds.bounding_box().unwrap();
            let template = ds.objects().next().unwrap().clone();
            let requests = request_pool(&ds, &agg, 73);
            let mut lcg = Lcg::new(7000 + shards as u64);
            let mut next_id = 5_000_000u64;
            // Warm the cache, then interleave one interior append per full
            // read pass — the mixed-row cadence of the server bench.
            for request in &requests {
                engine.submit(request).unwrap();
            }
            for _ in 0..12 {
                let object = SpatialObject::new(
                    next_id,
                    Point::new(
                        bbox.min_x + bbox.width() * lcg.in_range(0.05, 0.95),
                        bbox.min_y + bbox.height() * lcg.in_range(0.05, 0.95),
                    ),
                    template.values.clone(),
                );
                next_id += 1;
                engine.append(object).unwrap();
                let rebuilt = build_engine((*engine.dataset()).clone(), agg.clone(), shards, 0);
                for request in &requests {
                    assert_eq!(
                        canonical_bytes(&engine.submit(request).unwrap()),
                        canonical_bytes(&rebuilt.submit(request).unwrap()),
                        "{name}, shards {shards}, {}: churned engine diverged \
                         from cold rebuild",
                        request.operation_name()
                    );
                }
            }
            let stats = engine.cache_stats().unwrap();
            assert_eq!(
                stats.carry_proof_failures, 0,
                "{name}, shards {shards}: the carry predicate accepted an \
                 entry the byte-identity proof rejected: {stats:?}"
            );
            if shards == 0 {
                // Carry-forward is gated to canonical sharded cores.
                assert_eq!(stats.carried_forward, 0, "{name}: {stats:?}");
            }
            total_carried += stats.carried_forward;
        }
    }
    assert!(
        total_carried > 0,
        "the churn interleavings never exercised a carry — the suite \
         proves nothing about carried hits"
    );
}

/// A stampede of identical cold queries coalesces onto one in-flight
/// computation: every caller gets a byte-identical response and at least
/// one follower waited on the leader's slot instead of recomputing.
#[test]
fn a_stampede_of_identical_cold_queries_coalesces() {
    let (ds, agg) = categorical_workload(600, 81);
    let bbox = ds.bounding_box().unwrap();
    let dim = agg.feature_dim();
    // Unsharded engine with the exhaustive oracle forced: the computation
    // is orders of magnitude longer than the in-flight table handoff, so
    // the barrier-released followers find the leader's flight in place.
    let engine = build_engine(ds, agg, 0, 16);
    let query = AsrsQuery::new(
        RegionSize::new(bbox.width() * 0.3, bbox.height() * 0.3),
        FeatureVector::new(vec![2.0; dim]),
        Weights::uniform(dim),
    );
    let request = QueryRequest::top_k(query, 3).with_backend(Backend::Naive);
    let threads = 8;
    let barrier = std::sync::Barrier::new(threads);
    let bytes: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    canonical_bytes(&engine.submit(&request).unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for b in &bytes[1..] {
        assert_eq!(b, &bytes[0], "stampede callers diverged");
    }
    let stats = engine.cache_stats().unwrap();
    assert!(
        stats.coalesced_waits >= 1,
        "no caller coalesced onto the in-flight computation: {stats:?}"
    );
}

/// The carry predicate's negative space: an append *inside* a reported
/// result region changes that entry's answer, so the publish pass must
/// reject the carry and the next submission must recompute cold.
#[test]
fn an_append_inside_a_reported_region_rejects_the_carry() {
    let (ds, agg) = categorical_workload(500, 91);
    let bbox = ds.bounding_box().unwrap();
    let dim = agg.feature_dim();
    let template = ds.objects().next().unwrap().clone();
    let engine = build_engine(ds, agg.clone(), 2, 16);
    let query = AsrsQuery::new(
        RegionSize::new(bbox.width() * 0.12, bbox.height() * 0.12),
        FeatureVector::new(vec![4.0; dim]),
        Weights::uniform(dim),
    );
    let request = QueryRequest::similar(query);
    let cold = engine.submit(&request).unwrap();
    let region = cold.best().unwrap().region;
    // Strictly inside the reported region *and* the dataset extent, so
    // the only carry gate this append can trip is the region check.
    let p = Point::new(
        (region.min_x + region.max_x) / 2.0,
        (region.min_y + region.max_y) / 2.0,
    );
    assert!(
        region.strictly_contains_point(&p) && bbox.strictly_contains_point(&p),
        "seed produced a region center outside the extent; re-seed the test"
    );
    engine
        .append(SpatialObject::new(9_999_999, p, template.values.clone()))
        .unwrap();
    assert_eq!(
        engine.dataset().bounding_box(),
        Some(bbox),
        "the interior append must not move the bounding box"
    );
    let stats = engine.cache_stats().unwrap();
    assert_eq!(
        stats.carried_forward, 0,
        "an entry whose reported region absorbed the append was carried: {stats:?}"
    );
    let misses_before = stats.misses;
    let warm = engine.submit(&request).unwrap();
    let stats = engine.cache_stats().unwrap();
    assert_eq!(
        stats.misses,
        misses_before + 1,
        "the rejected entry must recompute cold: {stats:?}"
    );
    let rebuilt = build_engine((*engine.dataset()).clone(), agg, 2, 0);
    assert_eq!(
        canonical_bytes(&warm),
        canonical_bytes(&rebuilt.submit(&request).unwrap()),
        "post-append recomputation diverged from a fresh rebuild"
    );
}

/// The MaxRS arm of the carry predicate: through the MaxRS → ASRS
/// reduction, a cached densest-region answer survives an append whose
/// influence window cannot reach the reported count, and the carried hit
/// serves bytes identical to a cold rebuild's answer.
#[test]
fn a_maxrs_entry_carries_across_a_distant_append() {
    let (ds, agg) = categorical_workload(500, 95);
    let bbox = ds.bounding_box().unwrap();
    let template = ds.objects().next().unwrap().clone();
    let engine = build_engine(ds, agg.clone(), 2, 16);
    let request = QueryRequest::max_rs(RegionSize::new(
        (bbox.width() / 9.0).max(0.5),
        (bbox.height() / 11.0).max(0.5),
    ));
    let cold = engine.submit(&request).unwrap();
    let region = cold.max_rs().unwrap().region;
    // An interior corner append: far from the dense winner, so its
    // influence window cannot hold a competitive candidate, and the
    // bounding box stays put (no batch-level rejection).
    let p = Point::new(
        bbox.min_x + bbox.width() * 0.02,
        bbox.min_y + bbox.height() * 0.02,
    );
    assert!(
        !region.contains_point(&p),
        "seed placed the densest region at the corner; re-seed the test"
    );
    engine
        .append(SpatialObject::new(9_999_998, p, template.values.clone()))
        .unwrap();
    assert_eq!(engine.dataset().bounding_box(), Some(bbox));
    let stats = engine.cache_stats().unwrap();
    assert_eq!(
        stats.carried_forward, 1,
        "the distant append must carry the MaxRS entry: {stats:?}"
    );
    let hits_before = stats.hits;
    let warm = engine.submit(&request).unwrap();
    let stats = engine.cache_stats().unwrap();
    assert_eq!(
        stats.hits,
        hits_before + 1,
        "the carried MaxRS entry must serve a hit: {stats:?}"
    );
    let rebuilt = build_engine((*engine.dataset()).clone(), agg, 2, 0);
    assert_eq!(
        canonical_bytes(&warm),
        canonical_bytes(&rebuilt.submit(&request).unwrap()),
        "carried MaxRS hit diverged from a cold rebuild"
    );
}

/// The MaxRS arm's negative space: an append inside the reported densest
/// region raises its count, so the carry must be rejected and the next
/// submission recomputes cold — finding the improved answer.
#[test]
fn an_append_inside_the_maxrs_region_rejects_the_carry() {
    let (ds, agg) = categorical_workload(500, 97);
    let bbox = ds.bounding_box().unwrap();
    let template = ds.objects().next().unwrap().clone();
    let engine = build_engine(ds, agg.clone(), 2, 16);
    let request = QueryRequest::max_rs(RegionSize::new(
        (bbox.width() / 9.0).max(0.5),
        (bbox.height() / 11.0).max(0.5),
    ));
    let cold = engine.submit(&request).unwrap();
    let result = cold.max_rs().unwrap();
    let p = Point::new(
        (result.region.min_x + result.region.max_x) / 2.0,
        (result.region.min_y + result.region.max_y) / 2.0,
    );
    assert!(
        result.region.strictly_contains_point(&p) && bbox.strictly_contains_point(&p),
        "seed produced a winner region on the extent edge; re-seed the test"
    );
    engine
        .append(SpatialObject::new(9_999_997, p, template.values.clone()))
        .unwrap();
    assert_eq!(engine.dataset().bounding_box(), Some(bbox));
    let stats = engine.cache_stats().unwrap();
    assert_eq!(
        stats.carried_forward, 0,
        "an entry whose region absorbed the append was carried: {stats:?}"
    );
    let misses_before = stats.misses;
    let warm = engine.submit(&request).unwrap();
    let stats = engine.cache_stats().unwrap();
    assert_eq!(stats.misses, misses_before + 1, "must recompute cold: {stats:?}");
    assert!(
        warm.max_rs().unwrap().count >= result.count,
        "the interior append cannot lower the densest count"
    );
    let rebuilt = build_engine((*engine.dataset()).clone(), agg, 2, 0);
    assert_eq!(
        canonical_bytes(&warm),
        canonical_bytes(&rebuilt.submit(&request).unwrap()),
        "post-append recomputation diverged from a fresh rebuild"
    );
}
