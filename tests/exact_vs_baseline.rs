//! Cross-crate exactness tests: DS-Search, the sweep-line baseline and the
//! exhaustive arrangement oracle must return the same optimal distance on
//! the same instance.

use asrs_suite::prelude::*;

fn tweet_query(target_weekend: f64, size: RegionSize) -> AsrsQuery {
    // The paper's composite aggregator F1: distribution over the day of the
    // week, weekend dimensions weighted 1/2, weekday dimensions 1/5.
    AsrsQuery::new(
        size,
        FeatureVector::new(vec![
            0.0,
            0.0,
            0.0,
            0.0,
            0.0,
            target_weekend,
            target_weekend,
        ]),
        Weights::new(vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.5, 0.5]),
    )
}

#[test]
fn ds_search_matches_the_naive_oracle_on_uniform_data() {
    for seed in 0..8 {
        let ds = UniformGenerator::default().generate(60, seed);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(15.0, 12.0),
            FeatureVector::new(vec![3.0, 2.0, 1.0, 0.0]),
            Weights::uniform(4),
        );
        let ds_result = DsSearch::new(&ds, &agg).search(&query).unwrap();
        let oracle = naive::naive_best_region(&ds, &agg, &query).unwrap();
        assert!(
            (ds_result.distance - oracle.distance).abs() < 1e-9,
            "seed {seed}: DS-Search {} vs oracle {}",
            ds_result.distance,
            oracle.distance
        );
    }
}

#[test]
fn ds_search_matches_the_sweep_baseline_on_clustered_tweets() {
    for seed in 0..4 {
        let ds = TweetGenerator::compact(5).generate(120, seed);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("day_of_week", Selection::All)
            .build()
            .unwrap();
        let query = tweet_query(6.0, RegionSize::new(120.0, 120.0));
        let ds_result = DsSearch::new(&ds, &agg).search(&query).unwrap();
        let base = SweepBase::new(&ds, &agg).search(&query).unwrap();
        assert!(
            (ds_result.distance - base.distance).abs() < 1e-9,
            "seed {seed}: DS-Search {} vs Base {}",
            ds_result.distance,
            base.distance
        );
    }
}

#[test]
fn all_three_solvers_agree_with_mixed_aggregators() {
    for seed in [3, 17] {
        let ds = PoiSynGenerator::compact(4).generate(70, seed);
        let agg = CompositeAggregator::builder(ds.schema())
            .sum("visits", Selection::All)
            .average("rating", Selection::All)
            .build()
            .unwrap();
        // The paper's F2-style target: many visits, perfect rating.
        let query = AsrsQuery::new(
            RegionSize::new(150.0, 150.0),
            FeatureVector::new(vec![4_000.0, 10.0]),
            Weights::new(vec![1.0 / 4_000.0, 0.1]),
        );
        let ds_result = DsSearch::new(&ds, &agg).search(&query).unwrap();
        let sweep = SweepBase::new(&ds, &agg).search(&query).unwrap();
        let oracle = naive::naive_best_region(&ds, &agg, &query).unwrap();
        assert!(
            (ds_result.distance - oracle.distance).abs() < 1e-6,
            "seed {seed}: DS {} vs oracle {}",
            ds_result.distance,
            oracle.distance
        );
        assert!(
            (sweep.distance - oracle.distance).abs() < 1e-6,
            "seed {seed}: sweep {} vs oracle {}",
            sweep.distance,
            oracle.distance
        );
    }
}

#[test]
fn agreement_holds_across_query_sizes() {
    let ds = UniformGenerator::default().generate(50, 42);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("category", Selection::All)
        .build()
        .unwrap();
    for k in [1.0, 4.0, 7.0, 10.0] {
        let size = RegionSize::new(k, k);
        let query = AsrsQuery::new(
            size,
            FeatureVector::new(vec![1.0, 1.0, 1.0, 1.0]),
            Weights::uniform(4),
        );
        let ds_result = DsSearch::new(&ds, &agg).search(&query).unwrap();
        let oracle = naive::naive_best_region(&ds, &agg, &query).unwrap();
        assert!(
            (ds_result.distance - oracle.distance).abs() < 1e-9,
            "size {k}q: DS {} vs oracle {}",
            ds_result.distance,
            oracle.distance
        );
    }
}

#[test]
fn agreement_holds_with_selective_aggregators_and_l2() {
    let ds = UniformGenerator::default().generate(45, 7);
    let agg = CompositeAggregator::builder(ds.schema())
        .count(Selection::cat_equals(0, 1))
        .count(Selection::cat_equals(0, 2))
        .build()
        .unwrap();
    let query = AsrsQuery::new(
        RegionSize::new(20.0, 20.0),
        FeatureVector::new(vec![3.0, 0.0]),
        Weights::uniform(2),
    )
    .with_metric(DistanceMetric::L2);
    let ds_result = DsSearch::new(&ds, &agg).search(&query).unwrap();
    let oracle = naive::naive_best_region(&ds, &agg, &query).unwrap();
    assert!(
        (ds_result.distance - oracle.distance).abs() < 1e-9,
        "L2: DS {} vs oracle {}",
        ds_result.distance,
        oracle.distance
    );
}

#[test]
fn query_by_example_recovers_a_zero_distance_region() {
    // Using a real region as the example means the optimum distance is 0;
    // all solvers must find some region achieving it.
    let ds = TweetGenerator::compact(4).generate(90, 5);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .unwrap();
    let example = Rect::new(200.0, 300.0, 400.0, 480.0);
    let query = AsrsQuery::from_example_region(&ds, &agg, &example).unwrap();
    let ds_result = DsSearch::new(&ds, &agg).search(&query).unwrap();
    let sweep = SweepBase::new(&ds, &agg).search(&query).unwrap();
    assert!(ds_result.distance < 1e-9);
    assert!(sweep.distance < 1e-9);
}
