//! The MaxRS adaptation (Section 7.5): DS-Search adapted to MaxRS must
//! agree with the Optimal Enclosure sweep-line algorithm and with the
//! exhaustive oracle.

use asrs_suite::prelude::*;

#[test]
fn ds_maxrs_equals_oe_and_oracle_on_random_data() {
    for seed in 0..6 {
        let ds = UniformGenerator::default().generate(80, seed);
        let size = RegionSize::new(14.0, 11.0);
        let ds_result = MaxRsSearch::new(&ds, size).search().unwrap();
        let oe = OptimalEnclosure::new(&ds, size).search().unwrap();
        let oracle = naive::naive_maxrs_count(&ds, size.width, size.height).unwrap();
        assert_eq!(ds_result.count, oracle, "seed {seed}: DS-MaxRS vs oracle");
        assert_eq!(oe.count, oracle, "seed {seed}: OE vs oracle");
    }
}

#[test]
fn ds_maxrs_equals_oe_on_clustered_data() {
    for seed in [1, 5, 9] {
        let ds = TweetGenerator::compact(4).generate(600, seed);
        let size = RegionSize::new(80.0, 80.0);
        let ds_result = MaxRsSearch::new(&ds, size).search().unwrap();
        let oe = OptimalEnclosure::new(&ds, size).search().unwrap();
        assert_eq!(
            ds_result.count, oe.count,
            "seed {seed}: DS-MaxRS {} vs OE {}",
            ds_result.count, oe.count
        );
        // Both regions really enclose the count they claim.
        assert_eq!(ds.count_strictly_in(&ds_result.region), ds_result.count);
        assert_eq!(ds.count_strictly_in(&oe.region), oe.count);
    }
}

#[test]
fn maxrs_count_is_monotone_in_region_size() {
    let ds = PoiSynGenerator::compact(5).generate(400, 3);
    let mut previous = 0usize;
    for k in [10.0, 40.0, 70.0, 100.0] {
        let count = MaxRsSearch::new(&ds, RegionSize::new(k, k))
            .search()
            .unwrap()
            .count;
        assert!(
            count >= previous,
            "a larger region can always enclose at least as many objects"
        );
        previous = count;
    }
}

#[test]
fn class_constrained_maxrs_is_consistent() {
    // The class-constrained variant (count only one category) can never
    // exceed the unconstrained count, and its reported count matches a
    // recount of the returned region.
    let ds = UniformGenerator::default().generate(300, 11);
    let size = RegionSize::new(18.0, 18.0);
    let unconstrained = MaxRsSearch::new(&ds, size).search().unwrap();
    for category in 0..4u32 {
        let constrained = MaxRsSearch::new(&ds, size)
            .with_selection(Selection::cat_equals(0, category))
            .search()
            .unwrap();
        assert!(constrained.count <= unconstrained.count);
        let recount = ds
            .objects_strictly_in(&constrained.region)
            .iter()
            .filter(|o| o.cat_value(0) == Some(category))
            .count();
        assert_eq!(recount, constrained.count);
    }
}

#[test]
fn maxrs_via_generic_asrs_query_matches_dedicated_wrapper() {
    // MaxRS is a special case of ASRS (Section 2): a count aggregator with
    // an unreachable target count.  The dedicated wrapper and the generic
    // query path must agree.
    let ds = UniformGenerator::default().generate(250, 23);
    let size = RegionSize::new(20.0, 15.0);
    let wrapper = MaxRsSearch::new(&ds, size).search().unwrap();

    let agg = CompositeAggregator::builder(ds.schema())
        .count(Selection::All)
        .build()
        .unwrap();
    let query = AsrsQuery::new(
        size,
        FeatureVector::new(vec![ds.len() as f64 + 1.0]),
        Weights::uniform(1),
    );
    let generic = DsSearch::new(&ds, &agg).search(&query).unwrap();
    let generic_count = generic.representation[0].round() as usize;
    assert_eq!(wrapper.count, generic_count);
}
