//! GI-DS must return the same optimal distance as plain DS-Search while
//! searching only a fraction of the index cells.

use asrs_suite::prelude::*;

#[test]
fn gi_ds_equals_ds_search_across_granularities() {
    let ds = TweetGenerator::compact(6).generate(1500, 9);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .unwrap();
    let query = AsrsQuery::new(
        RegionSize::new(60.0, 60.0),
        FeatureVector::new(vec![0.0, 0.0, 0.0, 0.0, 0.0, 25.0, 25.0]),
        Weights::new(vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.5, 0.5]),
    );
    let reference = DsSearch::new(&ds, &agg).search(&query).unwrap();
    for granularity in [16, 32, 64] {
        let index = GridIndex::build(&ds, &agg, granularity, granularity).unwrap();
        let result = GiDsSearch::new(&ds, &agg, &index).search(&query).unwrap();
        assert!(
            (result.distance - reference.distance).abs() < 1e-9,
            "granularity {granularity}: GI-DS {} vs DS {}",
            result.distance,
            reference.distance
        );
    }
}

#[test]
fn gi_ds_equals_the_naive_oracle_on_small_instances() {
    for seed in 0..5 {
        let ds = UniformGenerator::default().generate(55, seed);
        let agg = CompositeAggregator::builder(ds.schema())
            .distribution("category", Selection::All)
            .build()
            .unwrap();
        let index = GridIndex::build(&ds, &agg, 20, 20).unwrap();
        let query = AsrsQuery::new(
            RegionSize::new(14.0, 11.0),
            FeatureVector::new(vec![2.0, 2.0, 0.0, 1.0]),
            Weights::uniform(4),
        );
        let gi = GiDsSearch::new(&ds, &agg, &index).search(&query).unwrap();
        let oracle = naive::naive_best_region(&ds, &agg, &query).unwrap();
        assert!(
            (gi.distance - oracle.distance).abs() < 1e-9,
            "seed {seed}: GI-DS {} vs oracle {}",
            gi.distance,
            oracle.distance
        );
    }
}

#[test]
fn finer_index_granularity_searches_a_smaller_fraction_of_cells() {
    // Reproduces the trend of Table 1: the ratio of searched cells drops as
    // the grid index gets finer.
    let ds = TweetGenerator::compact(8).generate(4000, 21);
    let agg = CompositeAggregator::builder(ds.schema())
        .distribution("day_of_week", Selection::All)
        .build()
        .unwrap();
    let query = AsrsQuery::new(
        RegionSize::new(50.0, 50.0),
        FeatureVector::new(vec![0.0, 0.0, 0.0, 0.0, 0.0, 30.0, 30.0]),
        Weights::new(vec![0.2, 0.2, 0.2, 0.2, 0.2, 0.5, 0.5]),
    );
    let mut ratios = Vec::new();
    for granularity in [16, 32, 64] {
        let index = GridIndex::build(&ds, &agg, granularity, granularity).unwrap();
        let result = GiDsSearch::new(&ds, &agg, &index).search(&query).unwrap();
        ratios.push(result.stats.index_search_ratio().unwrap());
    }
    assert!(
        ratios[2] <= ratios[0] + 1e-9,
        "finest grid must not search a larger fraction: {ratios:?}"
    );
    assert!(ratios.iter().all(|r| *r <= 1.0));
}

#[test]
fn index_size_grows_with_granularity_as_in_table_1() {
    let ds = PoiSynGenerator::compact(5).generate(2000, 2);
    let agg = CompositeAggregator::builder(ds.schema())
        .sum("visits", Selection::All)
        .average("rating", Selection::All)
        .build()
        .unwrap();
    let sizes: Vec<usize> = [64, 128, 256]
        .iter()
        .map(|&g| GridIndex::build(&ds, &agg, g, g).unwrap().memory_bytes())
        .collect();
    assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);
    // Quadrupling the cell count roughly quadruples the footprint.
    let ratio = sizes[1] as f64 / sizes[0] as f64;
    assert!(
        ratio > 3.0 && ratio < 5.0,
        "unexpected growth ratio {ratio}"
    );
}

#[test]
fn gi_ds_handles_numeric_aggregators() {
    let ds = PoiSynGenerator::compact(4).generate(800, 13);
    let agg = CompositeAggregator::builder(ds.schema())
        .sum("visits", Selection::All)
        .average("rating", Selection::All)
        .build()
        .unwrap();
    let index = GridIndex::build(&ds, &agg, 32, 32).unwrap();
    let query = AsrsQuery::new(
        RegionSize::new(120.0, 120.0),
        FeatureVector::new(vec![20_000.0, 10.0]),
        Weights::new(vec![1.0 / 20_000.0, 0.1]),
    );
    let reference = DsSearch::new(&ds, &agg).search(&query).unwrap();
    let indexed = GiDsSearch::new(&ds, &agg, &index).search(&query).unwrap();
    assert!(
        (reference.distance - indexed.distance).abs() < 1e-6,
        "GI-DS {} vs DS {}",
        indexed.distance,
        reference.distance
    );
}
